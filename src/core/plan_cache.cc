#include "plan_cache.hh"

namespace shmt::core {

bool
PlanKey::operator==(const PlanKey &o) const
{
    return opcode == o.opcode && costKeyOverride == o.costKeyOverride &&
           weight == o.weight && inputShapes == o.inputShapes &&
           outRows == o.outRows && outCols == o.outCols &&
           targetHlops == o.targetHlops && device == o.device;
}

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t
fnvBytes(uint64_t h, const void *data, size_t bytes)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

uint64_t
fnvValue(uint64_t h, uint64_t v)
{
    return fnvBytes(h, &v, sizeof(v));
}

} // namespace

size_t
PlanKeyHash::operator()(const PlanKey &k) const
{
    uint64_t h = kFnvOffset;
    h = fnvBytes(h, k.opcode.data(), k.opcode.size());
    h = fnvValue(h, k.opcode.size());
    h = fnvBytes(h, k.costKeyOverride.data(), k.costKeyOverride.size());
    h = fnvValue(h, k.costKeyOverride.size());
    h = fnvBytes(h, &k.weight, sizeof(k.weight));
    for (const auto &[r, c] : k.inputShapes) {
        h = fnvValue(h, r);
        h = fnvValue(h, c);
    }
    h = fnvValue(h, k.outRows);
    h = fnvValue(h, k.outCols);
    h = fnvValue(h, k.targetHlops);
    h = fnvValue(h, k.device);
    return static_cast<size_t>(h);
}

PlanKey
makePlanKey(const VOp &vop, size_t target_hlops, size_t device)
{
    PlanKey key;
    key.opcode = vop.opcode;
    key.costKeyOverride = vop.costKeyOverride;
    key.weight = vop.weight;
    key.inputShapes.reserve(vop.inputs.size());
    for (const Tensor *t : vop.inputs)
        key.inputShapes.emplace_back(t->rows(), t->cols());
    if (vop.output) {
        key.outRows = vop.output->rows();
        key.outCols = vop.output->cols();
    }
    key.targetHlops = target_hlops;
    key.device = device;
    return key;
}

std::shared_ptr<const PlanSkeleton>
PlanCache::find(const PlanKey &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : it->second;
}

void
PlanCache::insert(const PlanKey &key,
                  std::shared_ptr<const PlanSkeleton> skel)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (map_.size() >= maxEntries_ && !map_.count(key))
        map_.clear();
    map_.emplace(key, std::move(skel)); // first publisher wins
}

size_t
PlanCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

void
PlanCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
}

} // namespace shmt::core

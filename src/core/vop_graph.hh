/**
 * @file
 * Dataflow dependency graph over a program's VOps.
 *
 * A VopProgram lists its operations in submission order, but the only
 * true ordering constraints are the data hazards between them. The
 * graph derives those from tensor *identity* (Tensor::id(), the same
 * process-unique ids the serving caches key on — see tensor.hh):
 *
 *  - RAW: a VOp reading a tensor depends on its last writer.
 *  - WAW: a VOp writing a tensor depends on its previous writer.
 *  - WAR: a VOp writing a tensor depends on every reader since the
 *    previous write (their input scans, INT8 staging passes and
 *    kernel-body reads must complete before the bytes change).
 *
 * An edge i -> j therefore means "j must not plan, sample, stage or
 * execute before i's functional work is complete" — the contract the
 * GraphScheduler enforces both for the deterministic simulated-time
 * charging order and for the concurrent host execution. Programs with
 * independent VOp chains (no shared tensors) produce disconnected
 * components, which is what inter-VOp parallel execution overlaps.
 */

#ifndef SHMT_CORE_VOP_GRAPH_HH
#define SHMT_CORE_VOP_GRAPH_HH

#include <cstddef>
#include <string_view>
#include <vector>

#include "core/vop.hh"
#include "kernels/kernel_registry.hh"

namespace shmt::core {

/** Producer/consumer dependency DAG over one program's VOps. */
class VopGraph
{
  public:
    /** Adjacency of one VOp (indices into the program's op list). */
    struct Node
    {
        std::vector<size_t> preds;  //!< must complete before this VOp
        std::vector<size_t> succs;  //!< wait for this VOp
    };

    /**
     * Derive the hazard DAG of @p program from tensor ids (RAW, WAW
     * and WAR edges, deduplicated, adjacency lists sorted). An
     * in-place VOp (output aliasing an input) never gains a
     * self-edge; its read and write hazards both bind to the
     * neighboring VOps.
     */
    static VopGraph build(const VopProgram &program);

    /**
     * The degenerate chain 0 -> 1 -> ... -> n-1: every VOp depends on
     * its predecessor exactly as the historical serial driver loop
     * assumed. `--graph-exec=off` executes under this graph, which is
     * what makes the off path byte-identical to the legacy loop.
     */
    static VopGraph chain(size_t n);

    size_t size() const { return nodes_.size(); }
    const Node &node(size_t i) const { return nodes_[i]; }
    const std::vector<Node> &nodes() const { return nodes_; }

    /** Total directed edges. */
    size_t edgeCount() const;

    /**
     * True when the graph is exactly the serial chain (node i depends
     * on precisely node i-1): scheduling under it degenerates to the
     * submission-order loop, so simulated timing is preserved.
     */
    bool isChain() const;

    /**
     * Deterministic topological order: repeatedly emit the
     * lowest-indexed VOp whose predecessors are all emitted. For a
     * dependence-ordered program this is the identity permutation.
     * Panics on a cyclic graph (impossible for build()'s output: all
     * hazard edges point forward in submission order).
     */
    std::vector<size_t> topologicalOrder() const;

  private:
    std::vector<Node> nodes_;
};

/**
 * Per-VOp static metadata resolved once per program walk: the kernel
 * registry entry, the calibration cost key (the opcode's default or
 * the VOp's override — a view into strings owned by the program or
 * the registry, valid while both live), the combined cost weight, and
 * the partitioning basis (inputs[0]'s shape). The per-VOp driver
 * loops (graph scheduling, SW-pipelining re-timing, memory reports)
 * share this walk instead of each re-deriving the tuple.
 */
struct VopMeta
{
    const kernels::KernelInfo *info = nullptr;
    std::string_view costKey;
    double costWeight = 1.0;  //!< info.costWeight x vop.weight
    size_t rows = 0, cols = 0;
};

/** Resolve the metadata of every VOp of @p program, in op order. */
std::vector<VopMeta> resolveVopMeta(const VopProgram &program);

} // namespace shmt::core

#endif // SHMT_CORE_VOP_GRAPH_HH

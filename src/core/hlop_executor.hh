/**
 * @file
 * Stage 4 of the staged VOp execution pipeline: functional execution.
 *
 * The discrete-event clock (DispatchSim) decides *order* — dispatch,
 * stealing, tail splits; the HlopExecutor later decides *execution*,
 * running every Exec record's kernel body on the shared host pool.
 * Partitions write disjoint outputs (their own accumulator or their
 * own output region), so host-side completion order cannot affect the
 * numerics. An in-place VOp (output aliasing an input) is the one
 * exception: it is not partition-independent and runs serially in
 * dispatch order, exactly as the historical monolith did.
 */

#ifndef SHMT_CORE_HLOP_EXECUTOR_HH
#define SHMT_CORE_HLOP_EXECUTOR_HH

#include <memory>
#include <vector>

#include "core/dispatch_sim.hh"
#include "core/plan.hh"
#include "sim/wallclock.hh"

namespace shmt::core {

/** Runs deferred HLOP bodies at each device's native precision. */
class HlopExecutor
{
  public:
    explicit HlopExecutor(
        const std::vector<std::unique_ptr<devices::Backend>> &backends)
        : backends_(&backends)
    {}

    /**
     * Execute every Exec record of @p records through its device's
     * backend. Reductions write into @p accumulators[record.hlop]
     * (sized to the final, post-split partition count by the caller);
     * map-style kernels write their region of the plan's output.
     * @p wall, when non-null, accumulates the host wall-clock spent.
     */
    void execute(const VopPlan &plan,
                 const std::vector<DispatchRecord> &records,
                 std::vector<Tensor> &accumulators,
                 sim::HostPhaseStats *wall) const;

  private:
    const std::vector<std::unique_ptr<devices::Backend>> *backends_;
};

} // namespace shmt::core

#endif // SHMT_CORE_HLOP_EXECUTOR_HH

/**
 * @file
 * Stage 4 of the staged VOp execution pipeline: functional execution.
 *
 * The discrete-event clock (DispatchSim) decides *order* — dispatch,
 * stealing, tail splits; the HlopExecutor later decides *execution*,
 * running every Exec record's kernel body on the shared host pool.
 * Partitions write disjoint outputs (their own accumulator or their
 * own output region), so host-side completion order cannot affect the
 * numerics. An in-place VOp (output aliasing an input) is the one
 * exception: it is not partition-independent and runs serially in
 * dispatch order, exactly as the historical monolith did.
 */

#ifndef SHMT_CORE_HLOP_EXECUTOR_HH
#define SHMT_CORE_HLOP_EXECUTOR_HH

#include <memory>
#include <vector>

#include "common/status.hh"
#include "core/dispatch_sim.hh"
#include "core/plan.hh"
#include "core/run_types.hh"
#include "sim/wallclock.hh"

namespace shmt::core {

/** One HLOP whose device faulted and that ran elsewhere instead. */
struct HlopRecovery
{
    size_t hlop = 0;    //!< partition index within the VOp
    Rect region;        //!< the re-executed region
    size_t from = 0;    //!< faulting device index
    size_t to = 0;      //!< device that completed the HLOP
};

/** Outcome of one VOp's functional execution. */
struct ExecOutcome
{
    /**
     * Ok, Cancelled/DeadlineExceeded (cooperative stop between
     * HLOPs), or BackendFailure (an HLOP faulted on every eligible
     * device). On non-OK the VOp's output must be treated as invalid.
     */
    common::Status status;
    /**
     * Fault re-dispatches that succeeded, in dispatch order. The
     * caller charges each recovery on the rescue device's simulated
     * timeline.
     */
    std::vector<HlopRecovery> recoveries;
};

/** Runs deferred HLOP bodies at each device's native precision. */
class HlopExecutor
{
  public:
    explicit HlopExecutor(
        const std::vector<std::unique_ptr<devices::Backend>> &backends)
        : backends_(&backends)
    {}

    /**
     * Execute every Exec record of @p records through its device's
     * backend. Reductions write into @p accumulators[record.hlop]
     * (sized to the final, post-split partition count by the caller);
     * map-style kernels write their region of the plan's output.
     * @p wall, when non-null, accumulates the host wall-clock spent.
     *
     * A backend fault (fail-stop: nothing written) re-dispatches the
     * HLOP to the remaining eligible devices in slot order; only when
     * every candidate faults does the outcome degrade to
     * BackendFailure. @p ctl is polled between HLOPs on the serial
     * (in-place) path and per chunk on the parallel path; a trip
     * stops cooperatively with Cancelled/DeadlineExceeded.
     */
    ExecOutcome execute(const VopPlan &plan,
                        const std::vector<DispatchRecord> &records,
                        std::vector<Tensor> &accumulators,
                        sim::HostPhaseStats *wall,
                        const ExecControl &ctl = {}) const;

  private:
    const std::vector<std::unique_ptr<devices::Backend>> *backends_;
};

} // namespace shmt::core

#endif // SHMT_CORE_HLOP_EXECUTOR_HH

/**
 * @file
 * Generation-keyed memoization of data-derived host scans: QAWS
 * criticality statistics and NPU quantization ranges (see DESIGN.md
 * "Caching and serving layers").
 *
 * Both scans are pure functions of a tensor's payload bytes plus
 * shape/sampler parameters, and both are rerun for every program a
 * Session serves even when the input tensor never changed. The cache
 * keys them on (Tensor::id, Tensor::generation): the generation is
 * bumped before any mutable alias of the payload is handed out, so an
 * unchanged generation proves unchanged bytes, and identical bytes
 * yield identical statistics — a hit is bit-transparent by
 * construction. In-place VOPs and mutable-view writes bump the
 * generation and therefore force a re-scan (pinned by the
 * invalidation tests).
 *
 * Only the *host work* is memoized. The simulated sampling cost is
 * still charged per the cost model from the memoized per-partition
 * visit counts, so simulated timing is bit-identical with the cache
 * on or off.
 *
 * Thread-safe (one cache serves every concurrent Session worker);
 * misses are computed outside the lock, so two racing workers may
 * both scan — they produce identical values and either insert wins.
 * Bounded: overflowing the entry cap evicts wholesale.
 */

#ifndef SHMT_CORE_CRITICALITY_CACHE_HH
#define SHMT_CORE_CRITICALITY_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/run_types.hh"
#include "core/sampling.hh"
#include "tensor/quantize.hh"
#include "tensor/tensor.hh"
#include "tensor/tiling.hh"

namespace shmt::core {

/** Memo of samplePartitions results and quant-range scans. */
class CriticalityCache
{
  public:
    explicit CriticalityCache(size_t max_entries = 4096)
        : maxEntries_(max_entries)
    {}

    /**
     * Memoized `samplePartitions(input.view(), regions, spec, seed)`.
     * The key covers the tensor snapshot (id, generation), the region
     * geometry, and every sampler parameter; @p vop_seed enters the
     * key only for the Uniform method (the only seed-dependent
     * sampler), so striding/reduction scans hit across VOp indices
     * and per-program seeds. Hit/miss and bytes-of-scan-avoided count
     * into the process metrics registry (CoreCounters).
     */
    std::shared_ptr<const std::vector<SampleStats>>
    stats(const Tensor &input, const std::vector<Rect> &regions,
          const SamplingSpec &spec, uint64_t vop_seed);

    /**
     * Memoized `chooseQuantParams(t.view(), simd)` — the full-range
     * scan behind the NPU models' fixed input scales.
     */
    QuantParams quantParams(const Tensor &t, bool simd);

    /** Entries currently cached (stats + quant). */
    size_t size() const;

    /** Drop every entry. */
    void clear();

  private:
    struct StatsKey
    {
        uint64_t id = 0;
        uint64_t gen = 0;
        uint64_t geometry = 0; //!< fold of the region rectangles
        uint64_t seed = 0;     //!< 0 unless the sampler is Uniform
        uint64_t rateBits = 0; //!< spec.rate, bit pattern
        uint64_t method = 0;
        uint64_t minSamples = 0;
        uint64_t reductionStep = 0;

        bool
        operator==(const StatsKey &o) const
        {
            return id == o.id && gen == o.gen &&
                   geometry == o.geometry && seed == o.seed &&
                   rateBits == o.rateBits && method == o.method &&
                   minSamples == o.minSamples &&
                   reductionStep == o.reductionStep;
        }
    };
    struct StatsKeyHash
    {
        size_t operator()(const StatsKey &k) const;
    };

    struct QuantKey
    {
        uint64_t id = 0;
        uint64_t gen = 0;
        bool simd = false;

        bool
        operator==(const QuantKey &o) const
        {
            return id == o.id && gen == o.gen && simd == o.simd;
        }
    };
    struct QuantKeyHash
    {
        size_t operator()(const QuantKey &k) const;
    };

    mutable std::mutex mutex_;
    size_t maxEntries_;
    std::unordered_map<StatsKey,
                       std::shared_ptr<const std::vector<SampleStats>>,
                       StatsKeyHash>
        stats_;
    std::unordered_map<QuantKey, QuantParams, QuantKeyHash> quant_;
};

} // namespace shmt::core

#endif // SHMT_CORE_CRITICALITY_CACHE_HH

/**
 * @file
 * Stage 2 of the staged VOp execution pipeline: criticality sampling.
 *
 * Turns a VopPlan plus the policy's SamplingSpec into per-partition
 * criticalities (paper §3.5, Algorithms 3-5) and charges the
 * simulated CPU cost of gathering them. The statistics are computed
 * in parallel on the shared host pool (each partition derives its own
 * seed stream from the plan seed), but the simulated cost is charged
 * serially in partition order — exactly the arithmetic sequence of
 * the historical monolithic loop, which is what keeps schedulingSec
 * bit-identical across host thread counts.
 */

#ifndef SHMT_CORE_SAMPLING_ENGINE_HH
#define SHMT_CORE_SAMPLING_ENGINE_HH

#include <vector>

#include "core/plan.hh"
#include "core/policy.hh"
#include "sim/cost_model.hh"
#include "sim/wallclock.hh"

namespace shmt::core {

class CriticalityCache;

/** Samples plans and charges the scheduler's simulated time. */
class SamplingEngine
{
  public:
    explicit SamplingEngine(const sim::CostModel &cost) : cost_(&cost) {}

    /**
     * Fill @p pinfos (criticality + region per partition of @p plan)
     * under @p policy, charging sampling/canary/scheduling cost on top
     * of @p start. Returns the advanced CPU clock; the caller accounts
     * the difference as schedulingSec. @p wall, when non-null,
     * accumulates the host wall-clock spent gathering samples.
     *
     * @p memo, when non-null, memoizes the host-side statistics scan
     * by tensor write generation (counting into the process metrics
     * registry). Only the host work is skipped on a hit: the simulated
     * sampling cost is still charged from the memoized visit counts,
     * so the returned clock is bit-identical with or without the memo.
     */
    double charge(const VopPlan &plan, const Policy &policy, double start,
                  std::vector<PartitionInfo> &pinfos,
                  sim::HostPhaseStats *wall,
                  CriticalityCache *memo = nullptr) const;

  private:
    const sim::CostModel *cost_;
};

} // namespace shmt::core

#endif // SHMT_CORE_SAMPLING_ENGINE_HH

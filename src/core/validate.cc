#include "validate.hh"

#include <string>

#include "kernels/kernel_registry.hh"

namespace shmt::core {

namespace {

/** Label for error messages: "VOp #3 ('gaussian')". */
std::string
vopLabel(size_t index, const VOp &vop)
{
    return "VOp #" + std::to_string(index) + " ('" + vop.opcode + "')";
}

bool
fitsRectRange(size_t rows, size_t cols)
{
    constexpr size_t kLimit = size_t{1} << 16;
    return rows < kLimit && cols < kLimit;
}

} // namespace

common::Status
validateProgram(const VopProgram &program,
                const std::vector<std::unique_ptr<devices::Backend>>
                    &backends)
{
    using common::Status;
    for (size_t i = 0; i < program.ops.size(); ++i) {
        const VOp &vop = program.ops[i];
        const kernels::KernelInfo *info =
            kernels::KernelRegistry::instance().find(vop.opcode);
        if (!info)
            return Status::invalidArgument(
                vopLabel(i, vop) + ": opcode is not registered");
        if (!vop.output)
            return Status::invalidArgument(vopLabel(i, vop) +
                                           ": null output tensor");
        if (vop.inputs.empty())
            return Status::invalidArgument(vopLabel(i, vop) +
                                           ": no input tensors");
        for (const Tensor *t : vop.inputs)
            if (!t || t->empty())
                return Status::invalidArgument(
                    vopLabel(i, vop) + ": null or empty input tensor");
        if (info->reduce != kernels::ReduceKind::None) {
            if (vop.output->rows() != info->reduceRows ||
                vop.output->cols() != info->reduceCols)
                return Status::invalidArgument(
                    vopLabel(i, vop) + ": reduction output must be " +
                    std::to_string(info->reduceRows) + "x" +
                    std::to_string(info->reduceCols) + ", got " +
                    std::to_string(vop.output->rows()) + "x" +
                    std::to_string(vop.output->cols()));
        } else if (vop.output->empty()) {
            return Status::invalidArgument(vopLabel(i, vop) +
                                           ": empty output tensor");
        }
        // The partitioning basis must fit the residency rect key's
        // 16-bit coordinate fields (the planner asserts this later).
        const Tensor *basis = info->reduce != kernels::ReduceKind::None
                                  ? vop.inputs[0]
                                  : static_cast<const Tensor *>(
                                        vop.output);
        if (!fitsRectRange(basis->rows(), basis->cols()))
            return Status::invalidArgument(
                vopLabel(i, vop) +
                ": shape exceeds the 2^16 coordinate range");
        bool supported = false;
        for (const auto &bk : backends)
            if (bk->supports(*info)) {
                supported = true;
                break;
            }
        if (!supported)
            return Status::invalidArgument(
                vopLabel(i, vop) + ": no device supports this opcode");
    }
    return {};
}

} // namespace shmt::core

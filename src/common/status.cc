#include "status.hh"

namespace shmt::common {

std::string_view
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return "OK";
      case StatusCode::InvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::DeadlineExceeded: return "DEADLINE_EXCEEDED";
      case StatusCode::Cancelled: return "CANCELLED";
      case StatusCode::BackendFailure: return "BACKEND_FAILURE";
      case StatusCode::ResourceExhausted: return "RESOURCE_EXHAUSTED";
      case StatusCode::Internal: return "INTERNAL";
    }
    return "UNKNOWN";
}

std::string
Status::toString() const
{
    if (ok())
        return "OK";
    std::string out(statusCodeName(code_));
    if (!message_.empty()) {
        out += ": ";
        out += message_;
    }
    return out;
}

} // namespace shmt::common

/**
 * @file
 * Reusable staging-buffer pool.
 *
 * The Edge-TPU path stages an INT8-quantized copy of every HLOP's
 * inputs (paper §3.3.2). Allocating those scratch buffers per HLOP
 * dominates the staging cost for small partitions and serializes the
 * parallel host engine on the allocator lock; this pool recycles the
 * buffers through thread-local free lists instead (lock-free: a
 * buffer is returned to the cache of whichever thread drops the
 * lease, which is the thread that used it). Since the memory-engine
 * PR the buffers themselves are `common::Buffer` leases from
 * `common::MemoryPool` — 64-byte-aligned, size-class recycled — so a
 * buffer trimmed out of this pool's cache still lands in the process-
 * wide free lists, and all staging bytes show up in the unified
 * `MemoryStats` accounting.
 *
 * Each thread's cache is bounded by a byte high-water cap: releasing a
 * buffer that would push the cache past the cap trims the smallest
 * cached buffers first (keeping the large ones, whose reallocation is
 * what the pool exists to avoid). Long-lived serving processes
 * therefore cannot accumulate unbounded scratch from one outsized
 * program. stats() exposes per-thread lease/recycle/footprint
 * counters for reports and tests.
 */

#ifndef SHMT_COMMON_STAGING_POOL_HH
#define SHMT_COMMON_STAGING_POOL_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/memory_pool.hh"

namespace shmt::common {

/** Thread-local recycling pool of float scratch buffers. */
class StagingPool
{
  public:
    /** RAII lease of a pooled buffer; returns it on destruction. */
    class Lease
    {
      public:
        Lease() = default;
        explicit Lease(Buffer buf) : buf_(std::move(buf)) {}
        Lease(Lease &&other) noexcept : buf_(std::move(other.buf_)) {}
        Lease &
        operator=(Lease &&other) noexcept
        {
            if (this != &other) {
                release();
                buf_ = std::move(other.buf_);
            }
            return *this;
        }
        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;
        ~Lease() { release(); }

        float *data() { return buf_.data(); }
        const float *data() const { return buf_.data(); }
        size_t size() const { return buf_.size(); }

      private:
        void release();

        Buffer buf_;
    };

    /**
     * Double-buffered staging slots for a fill-while-consume handoff:
     * the owner fills one slot's leases while the previous slot's
     * consumer is still reading its planes, then flips. Each slot
     * carries an opaque consumer tag; the owner must not re-acquire a
     * slot until its tagged consumer is done (acquire() drops the old
     * leases, which recycles the buffers into the *filling* thread's
     * cache — so a coordinator staging for pool workers keeps its own
     * free list warm instead of donating buffers to worker caches).
     */
    class DoubleBuffer
    {
      public:
        static constexpr uint64_t kNoUser = ~uint64_t{0};

        /** One buffered side: the leases backing staged planes, plus
         *  opaque shared handles pinning externally owned planes
         *  (e.g. residency-cache entries) for the same lifetime. */
        struct Slot
        {
            std::vector<Lease> planes;
            std::vector<std::shared_ptr<const void>> pinned;
            uint64_t user = kNoUser;  //!< opaque consumer tag
        };

        /** The slot the next acquire() reuses — callers check that
         *  its user (if any) is done before acquiring. */
        const Slot &peek() const { return slots_[next_]; }

        /** Claim the next slot for @p user: releases the previous
         *  leases into this thread's cache and flips sides. */
        Slot &
        acquire(uint64_t user)
        {
            Slot &s = slots_[next_];
            next_ ^= 1;
            s.planes.clear();
            s.pinned.clear();
            s.user = user;
            return s;
        }

      private:
        Slot slots_[2];
        size_t next_ = 0;
    };

    /** Per-thread pool counters (since thread start or resetStats). */
    struct Stats
    {
        size_t leases = 0;       //!< acquire() calls
        size_t recycledHits = 0; //!< leases served from the cache
        size_t trimmed = 0;      //!< buffers dropped by the byte cap
        size_t cachedBytes = 0;  //!< bytes cached right now
        size_t peakBytes = 0;    //!< high-water mark of cachedBytes
    };

    /**
     * Lease a buffer of exactly @p elems floats. Contents are
     * UNINITIALIZED (recycled buffers keep stale data) — callers must
     * fully overwrite, which every staging pass does.
     */
    static Lease acquire(size_t elems);

    /** Buffers currently cached on this thread (for tests/reports). */
    static size_t cachedCount();

    /** This thread's pool counters. */
    static Stats stats();

    /** Zero this thread's counters (cachedBytes/peak keep the current
     *  footprint). */
    static void resetStats();

    /**
     * Shrink this thread's cache to at most @p target_bytes of buffer
     * capacity, dropping the smallest buffers first.
     */
    static void trim(size_t target_bytes);

    /** This thread's byte cap on cached (idle) buffers. */
    static size_t threadCacheCap();

    /** Set this thread's byte cap; trims immediately if exceeded. */
    static void setThreadCacheCap(size_t bytes);

    /** Drop this thread's cached buffers. */
    static void clearThreadCache();

  private:
    friend class Lease;

    static constexpr size_t kMaxCached = 32;
    /** Default per-thread cap on idle cached bytes (64 MiB — a few
     *  8192^2-scale staging buffers). */
    static constexpr size_t kDefaultCacheCapBytes =
        size_t{64} * 1024 * 1024;

    struct ThreadCache
    {
        std::vector<Buffer> buffers;
        size_t cachedBytes = 0;
        size_t capBytes = kDefaultCacheCapBytes;
        Stats stats;
    };

    static ThreadCache &cache();
    /** Drop smallest-first until cachedBytes <= target. */
    static void trimLocked(ThreadCache &tc, size_t target_bytes);
};

} // namespace shmt::common

#endif // SHMT_COMMON_STAGING_POOL_HH

/**
 * @file
 * Reusable staging-buffer pool.
 *
 * The Edge-TPU path stages an INT8-quantized copy of every HLOP's
 * inputs (paper §3.3.2). Allocating those scratch buffers per HLOP
 * dominates the staging cost for small partitions and serializes the
 * parallel host engine on the allocator lock; this pool recycles the
 * buffers through thread-local free lists instead (lock-free: a
 * buffer is returned to the cache of whichever thread drops the
 * lease, which is the thread that used it).
 */

#ifndef SHMT_COMMON_STAGING_POOL_HH
#define SHMT_COMMON_STAGING_POOL_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace shmt::common {

/** Thread-local recycling pool of float scratch buffers. */
class StagingPool
{
  public:
    /** RAII lease of a pooled buffer; returns it on destruction. */
    class Lease
    {
      public:
        Lease() = default;
        explicit Lease(std::vector<float> buf) : buf_(std::move(buf)) {}
        Lease(Lease &&other) noexcept : buf_(std::move(other.buf_))
        {
            other.buf_.clear();
        }
        Lease &
        operator=(Lease &&other) noexcept
        {
            if (this != &other) {
                release();
                buf_ = std::move(other.buf_);
                other.buf_.clear();
            }
            return *this;
        }
        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;
        ~Lease() { release(); }

        float *data() { return buf_.data(); }
        const float *data() const { return buf_.data(); }
        size_t size() const { return buf_.size(); }

      private:
        void release();

        std::vector<float> buf_;
    };

    /**
     * Lease a buffer of exactly @p elems floats. Contents are
     * UNINITIALIZED (recycled buffers keep stale data) — callers must
     * fully overwrite, which every staging pass does.
     */
    static Lease acquire(size_t elems);

    /** Buffers currently cached on this thread (for tests/reports). */
    static size_t cachedCount();

    /** Drop this thread's cached buffers. */
    static void clearThreadCache();

  private:
    friend class Lease;

    static constexpr size_t kMaxCached = 32;

    static std::vector<std::vector<float>> &cache();
};

} // namespace shmt::common

#endif // SHMT_COMMON_STAGING_POOL_HH

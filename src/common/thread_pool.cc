#include "thread_pool.hh"

#include <atomic>
#include <exception>
#include <memory>

#include "common/logging.hh"
#include "common/math_utils.hh"
#include "common/random.hh"

namespace shmt::common {

namespace {

/** Identity of the pool worker running on this thread (if any). */
thread_local const ThreadPool *tl_pool = nullptr;
thread_local size_t tl_worker = 0;

std::mutex g_global_lock;
std::unique_ptr<ThreadPool> g_global_pool;
size_t g_global_threads = 0;   //!< last configured request (0 = hw)

} // namespace

ThreadPool::ThreadPool(size_t threads)
{
    const size_t lanes = resolveThreads(threads);
    const size_t n_workers = lanes > 0 ? lanes - 1 : 0;
    deques_.resize(n_workers);
    workers_.reserve(n_workers);
    for (size_t w = 0; w < n_workers; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::scoped_lock guard(lock_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

bool
ThreadPool::onWorkerThread() const
{
    return tl_pool == this;
}

bool
ThreadPool::popTask(size_t self, Task &out)
{
    // Own deque first (the work this worker spawned), then the global
    // injector, then steal from the back of the deepest peer deque.
    if (!deques_[self].empty()) {
        out = std::move(deques_[self].front());
        deques_[self].pop_front();
        return true;
    }
    if (!injector_.empty()) {
        out = std::move(injector_.front());
        injector_.pop_front();
        return true;
    }
    size_t victim = deques_.size();
    size_t depth = 0;
    for (size_t v = 0; v < deques_.size(); ++v) {
        if (v == self)
            continue;
        if (deques_[v].size() > depth) {
            depth = deques_[v].size();
            victim = v;
        }
    }
    if (victim == deques_.size())
        return false;
    out = std::move(deques_[victim].back());
    deques_[victim].pop_back();
    ++steals_;
    return true;
}

void
ThreadPool::workerLoop(size_t self)
{
    tl_pool = this;
    tl_worker = self;
    std::unique_lock guard(lock_);
    for (;;) {
        Task task;
        if (popTask(self, task)) {
            guard.unlock();
            // A throwing task must not std::terminate the worker (and
            // with it the process): capture the first failure for
            // takeError() and keep serving sibling tasks.
            std::exception_ptr err;
            try {
                task();
            } catch (...) {
                err = std::current_exception();
            }
            task = nullptr;   // release captures before re-locking
            guard.lock();
            if (err && !taskError_)
                taskError_ = err;
            if (--inflight_ == 0)
                idle_.notify_all();
            continue;
        }
        if (stop_)
            return;           // queues drained, shutdown requested
        ++parked_;
        wake_.wait(guard);
    }
}

void
ThreadPool::submit(Task task)
{
    if (workers_.empty()) {
        {
            std::scoped_lock guard(lock_);
            ++submitted_;
        }
        task();               // serial pool: the caller is the lane
        return;
    }
    {
        std::scoped_lock guard(lock_);
        if (onWorkerThread())
            deques_[tl_worker].push_back(std::move(task));
        else
            injector_.push_back(std::move(task));
        ++submitted_;
        ++inflight_;
        peakInflight_ = std::max(peakInflight_, inflight_);
    }
    wake_.notify_one();
}

void
ThreadPool::drain()
{
    if (workers_.empty())
        return;
    std::unique_lock guard(lock_);
    idle_.wait(guard, [this] { return inflight_ == 0; });
}

size_t
ThreadPool::steals() const
{
    std::scoped_lock guard(lock_);
    return steals_;
}

std::exception_ptr
ThreadPool::takeError()
{
    std::scoped_lock guard(lock_);
    std::exception_ptr err = taskError_;
    taskError_ = nullptr;
    return err;
}

ThreadPool::Stats
ThreadPool::stats() const
{
    std::scoped_lock guard(lock_);
    Stats s;
    s.submitted = submitted_;
    s.steals = steals_;
    s.parked = parked_;
    s.queued = inflight_;
    s.peakQueued = peakInflight_;
    return s;
}

/** Shared progress of one parallelFor call. */
struct ThreadPool::ParallelState
{
    std::atomic<size_t> next{0};   //!< next unclaimed chunk
    std::atomic<size_t> done{0};   //!< completed chunks
    size_t total = 0;
    size_t begin = 0;
    size_t end = 0;
    size_t chunk = 0;
    const ChunkFn *body = nullptr; //!< valid while chunks remain
    std::mutex lock;
    std::condition_variable finished;
    std::exception_ptr error;
};

void
ThreadPool::parallelFor(size_t begin, size_t end, size_t grain,
                        const ChunkFn &body)
{
    if (end <= begin)
        return;
    const size_t n = end - begin;
    const size_t g = std::max<size_t>(1, grain);
    // Serial pool, one-chunk range, or a nested call from inside a
    // pool task: run inline. Nested inline execution keeps the pool
    // trivially deadlock-free (no lane ever blocks on another).
    if (threadCount() == 1 || n <= g || onWorkerThread()) {
        body(begin, end);
        return;
    }

    auto st = std::make_shared<ParallelState>();
    const size_t want = std::min(ceilDiv(n, g), threadCount() * 4);
    st->chunk = ceilDiv(n, want);
    st->total = ceilDiv(n, st->chunk);
    st->begin = begin;
    st->end = end;
    st->body = &body;

    auto run_chunks = [st] {
        for (;;) {
            const size_t i = st->next.fetch_add(1);
            if (i >= st->total)
                return;       // st->body is never read past this point
            const size_t lo = st->begin + i * st->chunk;
            const size_t hi = std::min(st->end, lo + st->chunk);
            try {
                (*st->body)(lo, hi);
            } catch (...) {
                std::scoped_lock guard(st->lock);
                if (!st->error)
                    st->error = std::current_exception();
            }
            if (st->done.fetch_add(1) + 1 == st->total) {
                std::scoped_lock guard(st->lock);
                st->finished.notify_all();
            }
        }
    };

    // One participant task per worker, placed round-robin on the
    // worker deques; workers whose deque stays empty steal them back
    // out of the loaded ones. The caller participates as well, so all
    // lanes chew on the chunk counter together.
    const size_t participants = std::min(workers_.size(), st->total);
    {
        std::scoped_lock guard(lock_);
        for (size_t p = 0; p < participants; ++p)
            deques_[rr_++ % deques_.size()].push_back(run_chunks);
        submitted_ += participants;
        inflight_ += participants;
        peakInflight_ = std::max(peakInflight_, inflight_);
    }
    wake_.notify_all();

    run_chunks();
    {
        std::unique_lock guard(st->lock);
        st->finished.wait(guard, [&] {
            return st->done.load() == st->total;
        });
    }
    if (st->error)
        std::rethrow_exception(st->error);
}

uint64_t
ThreadPool::taskSeed(uint64_t base, uint64_t stream)
{
    return base ^ hashMix(stream);
}

ThreadPool &
ThreadPool::global()
{
    std::scoped_lock guard(g_global_lock);
    if (!g_global_pool)
        g_global_pool = std::make_unique<ThreadPool>(g_global_threads);
    return *g_global_pool;
}

void
ThreadPool::configureGlobal(size_t threads)
{
    std::scoped_lock guard(g_global_lock);
    if (g_global_pool &&
        g_global_pool->threadCount() == resolveThreads(threads)) {
        g_global_threads = threads;
        return;
    }
    g_global_pool.reset();    // join the old workers first
    g_global_threads = threads;
    g_global_pool = std::make_unique<ThreadPool>(threads);
}

size_t
ThreadPool::resolveThreads(size_t requested)
{
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
ThreadPool::forChunks(size_t begin, size_t end, size_t grain,
                      const ChunkFn &body)
{
    if (end <= begin)
        return;
    if (end - begin <= std::max<size_t>(1, grain)) {
        body(begin, end);
        return;
    }
    bool serial;
    {
        // Don't spin up the pool just to discover it would be serial.
        std::scoped_lock guard(g_global_lock);
        serial = (g_global_pool ? g_global_pool->threadCount()
                                : resolveThreads(g_global_threads)) <= 1;
    }
    // The body runs outside the guard: it may itself call forChunks
    // (e.g. HLOP execution staging its inputs), which must be free to
    // re-take the global lock.
    if (serial) {
        body(begin, end);
        return;
    }
    global().parallelFor(begin, end, grain, body);
}

} // namespace shmt::common

#include "staging_pool.hh"

namespace shmt::common {

std::vector<std::vector<float>> &
StagingPool::cache()
{
    thread_local std::vector<std::vector<float>> buffers;
    return buffers;
}

StagingPool::Lease
StagingPool::acquire(size_t elems)
{
    auto &buffers = cache();
    std::vector<float> buf;
    if (!buffers.empty()) {
        buf = std::move(buffers.back());
        buffers.pop_back();
    }
    // resize() only touches memory when growing past the recycled
    // capacity; steady-state staging passes reuse it allocation-free.
    buf.resize(elems);
    return Lease(std::move(buf));
}

void
StagingPool::Lease::release()
{
    if (buf_.capacity() == 0)
        return;
    auto &buffers = cache();
    if (buffers.size() < kMaxCached)
        buffers.push_back(std::move(buf_));
    buf_ = std::vector<float>();
}

size_t
StagingPool::cachedCount()
{
    return cache().size();
}

void
StagingPool::clearThreadCache()
{
    cache().clear();
}

} // namespace shmt::common

#include "staging_pool.hh"

#include <algorithm>

namespace shmt::common {

StagingPool::ThreadCache &
StagingPool::cache()
{
    thread_local ThreadCache tc;
    return tc;
}

StagingPool::Lease
StagingPool::acquire(size_t elems)
{
    ThreadCache &tc = cache();
    ++tc.stats.leases;
    Buffer buf;
    if (!tc.buffers.empty()) {
        buf = std::move(tc.buffers.back());
        tc.buffers.pop_back();
        tc.cachedBytes -= buf.capacity() * sizeof(float);
        tc.stats.cachedBytes = tc.cachedBytes;
        ++tc.stats.recycledHits;
    }
    // resizeUninit() only swaps blocks when growing past the recycled
    // capacity; steady-state staging passes reuse it allocation-free.
    buf.resizeUninit(elems);
    return Lease(std::move(buf));
}

void
StagingPool::Lease::release()
{
    if (buf_.capacity() == 0)
        return;
    ThreadCache &tc = cache();
    const size_t bytes = buf_.capacity() * sizeof(float);
    if (tc.buffers.size() < kMaxCached &&
        bytes <= tc.capBytes) {
        tc.buffers.push_back(std::move(buf_));
        tc.cachedBytes += bytes;
        // Returning this buffer may push the cache over the byte cap;
        // trim back down, preferring to drop the smallest buffers
        // (large reallocations are what the pool exists to avoid).
        if (tc.cachedBytes > tc.capBytes)
            trimLocked(tc, tc.capBytes);
        tc.stats.peakBytes = std::max(tc.stats.peakBytes, tc.cachedBytes);
        tc.stats.cachedBytes = tc.cachedBytes;
    } else {
        // Dropped from the staging cache, but the block itself still
        // recycles through the process-wide MemoryPool free lists.
        ++tc.stats.trimmed;
    }
    buf_ = Buffer();
}

void
StagingPool::trimLocked(ThreadCache &tc, size_t target_bytes)
{
    std::sort(tc.buffers.begin(), tc.buffers.end(),
              [](const Buffer &a, const Buffer &b) {
                  return a.capacity() > b.capacity();
              });
    while (!tc.buffers.empty() && tc.cachedBytes > target_bytes) {
        tc.cachedBytes -= tc.buffers.back().capacity() * sizeof(float);
        tc.buffers.pop_back();
        ++tc.stats.trimmed;
    }
    tc.stats.cachedBytes = tc.cachedBytes;
}

size_t
StagingPool::cachedCount()
{
    return cache().buffers.size();
}

StagingPool::Stats
StagingPool::stats()
{
    return cache().stats;
}

void
StagingPool::resetStats()
{
    ThreadCache &tc = cache();
    tc.stats = Stats{};
    tc.stats.cachedBytes = tc.cachedBytes;
    tc.stats.peakBytes = tc.cachedBytes;
}

void
StagingPool::trim(size_t target_bytes)
{
    trimLocked(cache(), target_bytes);
}

size_t
StagingPool::threadCacheCap()
{
    return cache().capBytes;
}

void
StagingPool::setThreadCacheCap(size_t bytes)
{
    ThreadCache &tc = cache();
    tc.capBytes = bytes;
    if (tc.cachedBytes > tc.capBytes)
        trimLocked(tc, tc.capBytes);
}

void
StagingPool::clearThreadCache()
{
    ThreadCache &tc = cache();
    tc.buffers.clear();
    tc.cachedBytes = 0;
    tc.stats.cachedBytes = 0;
}

} // namespace shmt::common

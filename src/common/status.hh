/**
 * @file
 * Device-independent failure contract of the serving stack.
 *
 * Every fallible layer — program validation, backend execution,
 * deadline/cancellation checks, the session queue — reports through
 * one value type instead of asserting or throwing across layer
 * boundaries. A Status is cheap on the success path (code Ok, no
 * message allocation) and self-describing on failure; StatusOr<T>
 * carries either a value or the Status explaining its absence.
 *
 * Codes mirror the failure domains of the stack:
 *
 *  - InvalidArgument:   malformed program (unknown opcode, null/empty
 *                       tensors, bad reduce shape, aliasing) caught at
 *                       submission before any execution.
 *  - DeadlineExceeded:  the submission's Deadline passed; the program
 *                       stopped cooperatively at a VOp boundary.
 *  - Cancelled:         the submission's CancelToken fired, or the
 *                       Session shut down with the program still
 *                       queued.
 *  - BackendFailure:    a device fault survived re-dispatch — no
 *                       eligible device could execute the HLOP.
 *  - ResourceExhausted: a resource bound (queue, memory) was exceeded.
 *  - Internal:          an unexpected host-side failure (a throwing
 *                       kernel body) contained to its own program.
 */

#ifndef SHMT_COMMON_STATUS_HH
#define SHMT_COMMON_STATUS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace shmt::common {

/** Failure domain of a Status. */
enum class StatusCode : uint8_t {
    Ok = 0,
    InvalidArgument,
    DeadlineExceeded,
    Cancelled,
    BackendFailure,
    ResourceExhausted,
    Internal,
};

/** Canonical upper-snake name of @p code (e.g. "DEADLINE_EXCEEDED"). */
std::string_view statusCodeName(StatusCode code);

/** One success-or-failure outcome. Default-constructed = Ok. */
class Status
{
  public:
    /** Ok: the success path never allocates. */
    Status() = default;

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    /** @{ Factory per failure domain. */
    static Status invalidArgument(std::string msg)
    {
        return Status(StatusCode::InvalidArgument, std::move(msg));
    }
    static Status deadlineExceeded(std::string msg)
    {
        return Status(StatusCode::DeadlineExceeded, std::move(msg));
    }
    static Status cancelled(std::string msg)
    {
        return Status(StatusCode::Cancelled, std::move(msg));
    }
    static Status backendFailure(std::string msg)
    {
        return Status(StatusCode::BackendFailure, std::move(msg));
    }
    static Status resourceExhausted(std::string msg)
    {
        return Status(StatusCode::ResourceExhausted, std::move(msg));
    }
    static Status internal(std::string msg)
    {
        return Status(StatusCode::Internal, std::move(msg));
    }
    /** @} */

    bool ok() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "OK", or "CODE_NAME: message". */
    std::string toString() const;

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/** Either a value or the Status explaining its absence. */
template <typename T>
class StatusOr
{
  public:
    StatusOr(Status status) : status_(std::move(status)) {}
    StatusOr(T value) : value_(std::move(value)) {}

    bool ok() const { return value_.has_value(); }
    const Status &status() const { return status_; }

    /** Precondition: ok(). */
    const T &value() const & { return *value_; }
    T &value() & { return *value_; }
    T &&value() && { return std::move(*value_); }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace shmt::common

#endif // SHMT_COMMON_STATUS_HH

/**
 * @file
 * Lock-free flight recorder: the last N scheduling/fault events per
 * thread, kept in per-thread ring buffers and dumped post-mortem.
 *
 * When a submission ends non-OK the interesting history is the few
 * hundred events that led up to it — which VOps dispatched, which
 * HLOPs were re-dispatched after faults, where the coordinator
 * stopped, what the session workers were doing. Logging that
 * continuously would perturb the hot path; the flight recorder keeps
 * it in fixed-size rings instead (256 events/thread, overwriting the
 * oldest) and only materializes anything when Runtime::run ends
 * non-OK with a trace attached, at which point the dump lands in the
 * Chrome trace as a `flight` instant-event track.
 *
 * Recording is wait-free and TSan-clean: every slot word and every
 * ring head is a relaxed/release atomic, so a concurrent dump reads
 * defined values (a slot being overwritten mid-dump may mix two
 * events' fields — acceptable for post-mortem telemetry, never UB).
 * Rings are claimed per thread from a reusable pool on first record
 * and returned at thread exit (events of exited threads stay visible
 * until the ring is reclaimed). The armed flag is the metrics
 * registry's: disarming telemetry silences the recorder too.
 */

#ifndef SHMT_COMMON_FLIGHT_RECORDER_HH
#define SHMT_COMMON_FLIGHT_RECORDER_HH

#include <cstdint>
#include <string_view>
#include <vector>

namespace shmt::common {

class FlightRecorder
{
  public:
    /** What happened; a/b/code are kind-specific operands. */
    enum class Kind : uint8_t {
        None = 0,
        RunStart,       //!< a = VOp count
        RunEnd,         //!< code = StatusCode
        VopDispatch,    //!< a = VOp index, b = HLOP count
        SchedStop,      //!< coordinator stop; code = StatusCode, a = VOp
        FaultRecovered, //!< a = VOp index, b = HLOP index
        SessionSubmit,  //!< a = ticket
        SessionStart,   //!< a = ticket
        SessionDone,    //!< a = ticket, code = StatusCode
        SessionReject,  //!< code = StatusCode
    };

    /** One recorded event (host steady-clock timestamped). */
    struct Event
    {
        uint64_t tsNanos = 0;
        uint32_t thread = 0; //!< small dense recorder thread id
        Kind kind = Kind::None;
        int32_t code = 0;
        uint64_t a = 0;
        uint64_t b = 0;
    };

    /** Events each thread's ring retains (power of two). */
    static constexpr size_t kRingEvents = 256;

    /** Record one event on the calling thread's ring (armed-gated). */
    static void record(Kind kind, int32_t code = 0, uint64_t a = 0,
                       uint64_t b = 0);

    /** Snapshot every ring's retained events, oldest first. */
    static std::vector<Event> dump();

    /** Stable lower-snake name of @p kind (trace event names). */
    static std::string_view kindName(Kind kind);
};

} // namespace shmt::common

#endif // SHMT_COMMON_FLIGHT_RECORDER_HH

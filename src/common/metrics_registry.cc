#include "metrics_registry.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace shmt::common {

namespace detail {

std::atomic<bool> g_metricsArmed{true};

size_t
threadSlot()
{
    static std::atomic<size_t> next{0};
    thread_local const size_t slot =
        next.fetch_add(1, std::memory_order_relaxed);
    return slot;
}

} // namespace detail

namespace {

/** Shortest round-trip-ish rendering of @p v for the expositions. */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

/** Escape @p s for a Prometheus label value / JSON string. */
std::string
escaped(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '\\' || c == '"')
            out.push_back('\\');
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out.push_back(c);
    }
    return out;
}

/** `{k="v",...}` Prometheus label block ("" when unlabeled);
 *  @p extra, when non-empty, is appended verbatim as a last label. */
std::string
labelBlock(const MetricLabels &labels, const std::string &extra = {})
{
    if (labels.empty() && extra.empty())
        return {};
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first)
            out += ",";
        first = false;
        out += k + "=\"" + escaped(v) + "\"";
    }
    if (!extra.empty()) {
        if (!first)
            out += ",";
        out += extra;
    }
    out += "}";
    return out;
}

/** Registry map key of (@p name, @p labels). */
std::string
instrumentKey(std::string_view name, const MetricLabels &labels)
{
    std::string key(name);
    for (const auto &[k, v] : labels) {
        key += '\x01';
        key += k;
        key += '\x02';
        key += v;
    }
    return key;
}

} // namespace

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    uint64_t target = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    if (target == 0)
        target = 1;
    uint64_t cum = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
        const uint64_t b = buckets[i];
        if (b > 0 && cum + b >= target) {
            const double lo = Histogram::bucketLowerSec(i);
            const double hi = Histogram::bucketUpperSec(i);
            const double frac = static_cast<double>(target - cum) /
                                static_cast<double>(b);
            return lo + frac * (hi - lo);
        }
        cum += b;
    }
    return Histogram::kMaxSec;
}

HistogramSnapshot
HistogramSnapshot::delta(const HistogramSnapshot &since) const
{
    HistogramSnapshot d;
    d.count = count - since.count;
    d.sumNanos = sumNanos - since.sumNanos;
    for (size_t i = 0; i < buckets.size(); ++i)
        d.buckets[i] = buckets[i] - since.buckets[i];
    return d;
}

Histogram::Histogram() : shards_(new Shard[kShards]) {}

size_t
Histogram::bucketIndex(double seconds)
{
    if (!(seconds >= kMinSec)) // NaN / negative / sub-minimum
        return 0;
    if (seconds >= kMaxSec)
        return kBuckets - 1;
    const double decades = std::log10(seconds / kMinSec);
    auto idx = static_cast<size_t>(decades * kBucketsPerDecade) + 1;
    return std::min(idx, kFiniteBuckets);
}

double
Histogram::bucketLowerSec(size_t i)
{
    if (i == 0)
        return 0.0;
    if (i >= kFiniteBuckets + 1)
        return kMaxSec;
    return kMinSec * std::pow(10.0, static_cast<double>(i - 1) /
                                        kBucketsPerDecade);
}

double
Histogram::bucketUpperSec(size_t i)
{
    if (i >= kFiniteBuckets + 1)
        return kMaxSec;
    return kMinSec *
           std::pow(10.0, static_cast<double>(i) / kBucketsPerDecade);
}

void
Histogram::record(double seconds)
{
    if (!detail::g_metricsArmed.load(std::memory_order_relaxed))
        return;
    Shard &s = shards_[detail::threadSlot() % kShards];
    s.buckets[bucketIndex(seconds)].fetch_add(1,
                                              std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    const double nanos = seconds > 0.0 ? seconds * 1e9 : 0.0;
    s.sumNanos.fetch_add(static_cast<uint64_t>(nanos + 0.5),
                         std::memory_order_relaxed);
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    for (size_t sh = 0; sh < kShards; ++sh) {
        const Shard &s = shards_[sh];
        snap.count += s.count.load(std::memory_order_relaxed);
        snap.sumNanos += s.sumNanos.load(std::memory_order_relaxed);
        for (size_t i = 0; i < kBuckets; ++i)
            snap.buckets[i] +=
                s.buckets[i].load(std::memory_order_relaxed);
    }
    return snap;
}

MetricsRegistry &
MetricsRegistry::instance()
{
    // Leaked: instruments must survive thread-local teardown (the
    // memory pool records from exiting threads' cache destructors).
    static auto *registry = new MetricsRegistry();
    return *registry;
}

MetricsRegistry::Instrument &
MetricsRegistry::findOrCreate(std::string_view name,
                              const MetricLabels &labels, Kind kind,
                              std::string_view help)
{
    const std::string key = instrumentKey(name, labels);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = instruments_.find(key);
    if (it == instruments_.end()) {
        Instrument inst;
        inst.name = std::string(name);
        inst.labels = labels;
        inst.kind = kind;
        switch (kind) {
        case Kind::Counter:
            inst.counter = std::make_unique<Counter>();
            break;
        case Kind::Gauge:
            inst.gauge = std::make_unique<Gauge>();
            break;
        case Kind::Histogram:
            inst.histogram = std::make_unique<Histogram>();
            break;
        }
        it = instruments_.emplace(key, std::move(inst)).first;
    }
    SHMT_ASSERT(it->second.kind == kind, "metric family '", name,
                "' re-registered as a different instrument kind");
    if (!help.empty() && !help_.count(it->second.name))
        help_.emplace(it->second.name, std::string(help));
    return it->second;
}

Counter &
MetricsRegistry::counter(std::string_view name,
                         const MetricLabels &labels,
                         std::string_view help)
{
    return *findOrCreate(name, labels, Kind::Counter, help).counter;
}

Gauge &
MetricsRegistry::gauge(std::string_view name, const MetricLabels &labels,
                       std::string_view help)
{
    return *findOrCreate(name, labels, Kind::Gauge, help).gauge;
}

Histogram &
MetricsRegistry::histogram(std::string_view name,
                           const MetricLabels &labels,
                           std::string_view help)
{
    return *findOrCreate(name, labels, Kind::Histogram, help).histogram;
}

const MetricsRegistry::Instrument *
MetricsRegistry::find(std::string_view name,
                      const MetricLabels &labels) const
{
    const std::string key = instrumentKey(name, labels);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = instruments_.find(key);
    return it == instruments_.end() ? nullptr : &it->second;
}

uint64_t
MetricsRegistry::counterValue(std::string_view name,
                              const MetricLabels &labels) const
{
    const Instrument *inst = find(name, labels);
    return inst && inst->kind == Kind::Counter ? inst->counter->value()
                                               : 0;
}

int64_t
MetricsRegistry::gaugeValue(std::string_view name,
                            const MetricLabels &labels) const
{
    const Instrument *inst = find(name, labels);
    return inst && inst->kind == Kind::Gauge ? inst->gauge->value() : 0;
}

HistogramSnapshot
MetricsRegistry::histogramSnapshot(std::string_view name,
                                   const MetricLabels &labels) const
{
    const Instrument *inst = find(name, labels);
    return inst && inst->kind == Kind::Histogram
               ? inst->histogram->snapshot()
               : HistogramSnapshot{};
}

std::string
MetricsRegistry::prometheusText() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    std::string family;
    for (const auto &[key, inst] : instruments_) {
        if (inst.name != family) {
            family = inst.name;
            auto help = help_.find(family);
            if (help != help_.end())
                out += "# HELP " + family + " " + help->second + "\n";
            out += "# TYPE " + family + " ";
            switch (inst.kind) {
            case Kind::Counter:
                out += "counter\n";
                break;
            case Kind::Gauge:
                out += "gauge\n";
                break;
            case Kind::Histogram:
                out += "histogram\n";
                break;
            }
        }
        switch (inst.kind) {
        case Kind::Counter:
            out += inst.name + labelBlock(inst.labels) + " " +
                   std::to_string(inst.counter->value()) + "\n";
            break;
        case Kind::Gauge:
            out += inst.name + labelBlock(inst.labels) + " " +
                   std::to_string(inst.gauge->value()) + "\n";
            break;
        case Kind::Histogram: {
            const HistogramSnapshot snap = inst.histogram->snapshot();
            // Cumulative `le` buckets: the underflow bucket folds into
            // the first finite bound, the overflow bucket into +Inf.
            uint64_t cum = 0;
            for (size_t i = 0; i < Histogram::kFiniteBuckets + 1; ++i) {
                cum += snap.buckets[i];
                out += inst.name + "_bucket" +
                       labelBlock(inst.labels,
                                  "le=\"" +
                                      fmtDouble(
                                          Histogram::bucketUpperSec(i)) +
                                      "\"") +
                       " " + std::to_string(cum) + "\n";
            }
            cum += snap.buckets[kHistogramBuckets - 1];
            out += inst.name + "_bucket" +
                   labelBlock(inst.labels, "le=\"+Inf\"") + " " +
                   std::to_string(cum) + "\n";
            out += inst.name + "_sum" + labelBlock(inst.labels) + " " +
                   fmtDouble(static_cast<double>(snap.sumNanos) * 1e-9) +
                   "\n";
            out += inst.name + "_count" + labelBlock(inst.labels) + " " +
                   std::to_string(snap.count) + "\n";
            break;
        }
        }
    }
    return out;
}

std::string
MetricsRegistry::jsonText() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string counters, gauges, histograms;
    for (const auto &[key, inst] : instruments_) {
        std::string jkey = "\"" + escaped(inst.name);
        if (!inst.labels.empty()) {
            jkey += "{";
            bool first = true;
            for (const auto &[k, v] : inst.labels) {
                if (!first)
                    jkey += ",";
                first = false;
                jkey += escaped(k) + "=" + escaped(v);
            }
            jkey += "}";
        }
        jkey += "\":";
        switch (inst.kind) {
        case Kind::Counter:
            if (!counters.empty())
                counters += ",";
            counters += jkey + std::to_string(inst.counter->value());
            break;
        case Kind::Gauge:
            if (!gauges.empty())
                gauges += ",";
            gauges += jkey + std::to_string(inst.gauge->value());
            break;
        case Kind::Histogram: {
            const HistogramSnapshot snap = inst.histogram->snapshot();
            if (!histograms.empty())
                histograms += ",";
            histograms +=
                jkey + "{\"count\":" + std::to_string(snap.count) +
                ",\"sum_seconds\":" +
                fmtDouble(static_cast<double>(snap.sumNanos) * 1e-9) +
                ",\"mean\":" + fmtDouble(snap.meanSeconds()) +
                ",\"p50\":" + fmtDouble(snap.quantile(0.50)) +
                ",\"p90\":" + fmtDouble(snap.quantile(0.90)) +
                ",\"p99\":" + fmtDouble(snap.quantile(0.99)) +
                ",\"p999\":" + fmtDouble(snap.quantile(0.999)) + "}";
            break;
        }
        }
    }
    return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
           "},\"histograms\":{" + histograms + "}}";
}

} // namespace shmt::common

/**
 * @file
 * Telemetry engine: a process-wide registry of named, labeled
 * instruments (see DESIGN.md "Telemetry engine" and
 * docs/observability.md for the catalog).
 *
 * Three instrument kinds, all safe from any thread:
 *
 *  - Counter: monotone relaxed-atomic uint64. Consumers snapshot
 *    before/after a region and report the delta (the same pattern the
 *    residency and memory counters already used).
 *  - Gauge: signed relaxed-atomic level (bytes live, queue depth),
 *    plus a CAS-max helper for high-water marks.
 *  - Histogram: fixed-bucket log-scale latency distribution covering
 *    sub-microsecond through 10 s (8 buckets per decade, relative
 *    bucket width 10^(1/8) ~= 1.33x) with underflow/overflow buckets.
 *    Recording lands in one of a fixed set of cache-line-padded
 *    per-thread shards (thread slot modulo shard count), so racing
 *    recorders never contend on one line; snapshot() merges the
 *    shards and answers p50/p90/p99/p999 quantile queries by linear
 *    interpolation inside the covering bucket.
 *
 * The armed flag (process-global, default on) gates every record
 * path behind one relaxed load: `MetricsRegistry::setArmed(false)`
 * freezes all instruments. Recording never feeds back into execution
 * — outputs, simulated timing and allocator behavior are byte-
 * identical armed or not (pinned by tests/common/test_metrics.cc and
 * the pipeline_snapshot CI diff), and the armed hot path carries a
 * <2% host-wall budget gated by bench/micro_metrics. Note the freeze
 * applies to gauges too: toggling while leases are in flight can
 * leave a gauge off its true level (telemetry only, never behavior).
 *
 * Instruments are created on first use (`registry.counter(name,
 * labels)`), live forever at a stable address, and are identified by
 * family name plus an ordered label list. Exporters:
 *
 *  - prometheusText(): deterministic text exposition (families
 *    sorted, HELP/TYPE once per family, cumulative `le` histogram
 *    buckets) — what `shmtbench --metrics-out` and
 *    `Session::metricsText()` emit.
 *  - jsonText(): one compact JSON object (histograms carry count,
 *    sum and the four quantiles) — embedded as a `metrics` metadata
 *    record in the Chrome trace.
 *
 * The process singleton is `MetricsRegistry::instance()` and is
 * intentionally leaked so instruments outlive thread-local teardown
 * (the memory pool records from exiting threads). Tests may build
 * private registries for golden expositions.
 */

#ifndef SHMT_COMMON_METRICS_REGISTRY_HH
#define SHMT_COMMON_METRICS_REGISTRY_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace shmt::common {

namespace detail {
/** Process-global arming flag behind every instrument record path. */
extern std::atomic<bool> g_metricsArmed;
/** Small dense id of the calling thread (spreads histogram shards). */
size_t threadSlot();
} // namespace detail

/** Ordered (key, value) label list of one instrument. */
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/** Monotone relaxed-atomic counter. */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        if (detail::g_metricsArmed.load(std::memory_order_relaxed))
            value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Signed level instrument with a CAS-max high-water helper. */
class Gauge
{
  public:
    void
    add(int64_t d)
    {
        if (detail::g_metricsArmed.load(std::memory_order_relaxed))
            value_.fetch_add(d, std::memory_order_relaxed);
    }
    void sub(int64_t d) { add(-d); }

    void
    set(int64_t v)
    {
        if (detail::g_metricsArmed.load(std::memory_order_relaxed))
            value_.store(v, std::memory_order_relaxed);
    }

    /** add(), returning the post-add level (for peak tracking). */
    int64_t
    addAndGet(int64_t d)
    {
        if (!detail::g_metricsArmed.load(std::memory_order_relaxed))
            return value();
        return value_.fetch_add(d, std::memory_order_relaxed) + d;
    }

    /** Raise the level to @p v if below (monotone high-water mark). */
    void
    noteMax(int64_t v)
    {
        if (!detail::g_metricsArmed.load(std::memory_order_relaxed))
            return;
        int64_t cur = value_.load(std::memory_order_relaxed);
        while (cur < v && !value_.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
    }

    int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<int64_t> value_{0};
};

/** Total bucket count of every Histogram: 64 finite log-scale
 *  buckets (8/decade over [1e-7 s, 10 s)) plus underflow (index 0)
 *  and overflow (last). */
inline constexpr size_t kHistogramBuckets = 66;

/** One merged, immutable view of a Histogram (or a delta of two). */
struct HistogramSnapshot
{
    uint64_t count = 0;
    uint64_t sumNanos = 0;
    std::array<uint64_t, kHistogramBuckets> buckets{};

    /**
     * Value at quantile @p q in [0, 1] (q=0.5 is p50), interpolated
     * linearly inside the bucket covering the rank. Resolution is one
     * bucket (relative width 1.33x); exact-reference pins live in
     * tests/common/test_metrics.cc. Returns 0 when empty.
     */
    double quantile(double q) const;

    double
    meanSeconds() const
    {
        return count == 0 ? 0.0
                          : (static_cast<double>(sumNanos) * 1e-9) /
                                static_cast<double>(count);
    }

    /** This snapshot minus an earlier one (per-region view). */
    HistogramSnapshot delta(const HistogramSnapshot &since) const;
};

/** Sharded fixed-bucket log-scale latency histogram. */
class Histogram
{
  public:
    static constexpr int kBucketsPerDecade = 8;
    static constexpr double kMinSec = 1e-7;
    static constexpr double kMaxSec = 10.0;
    static constexpr size_t kFiniteBuckets = 64;
    static constexpr size_t kBuckets = kHistogramBuckets;

    Histogram();

    /** Bucket covering @p seconds (0 = underflow, last = overflow;
     *  NaN and negatives land in underflow). */
    static size_t bucketIndex(double seconds);
    /** Inclusive lower bound of bucket @p i in seconds (0 for the
     *  underflow bucket, kMaxSec for overflow). */
    static double bucketLowerSec(size_t i);
    /** Exclusive upper bound of bucket @p i in seconds (kMaxSec for
     *  the overflow bucket). */
    static double bucketUpperSec(size_t i);

    /** Record one latency observation (armed-gated, wait-free). */
    void record(double seconds);

    /** Merge every shard into one consistent-enough view (racing
     *  recorders may be missed; never torn counts). */
    HistogramSnapshot snapshot() const;

  private:
    static constexpr size_t kShards = 16;

    struct alignas(64) Shard
    {
        std::atomic<uint64_t> count{0};
        std::atomic<uint64_t> sumNanos{0};
        std::array<std::atomic<uint64_t>, kBuckets> buckets{};
    };

    std::unique_ptr<Shard[]> shards_;
};

/** The process-wide instrument registry (see the file comment). */
class MetricsRegistry
{
  public:
    /** Constructible for test-private registries; production code
     *  uses instance(). */
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process singleton (leaked; instruments live forever). */
    static MetricsRegistry &instance();

    /** @{ The process-global record-path gate (default armed). */
    static bool
    armed()
    {
        return detail::g_metricsArmed.load(std::memory_order_relaxed);
    }
    static void
    setArmed(bool on)
    {
        detail::g_metricsArmed.store(on, std::memory_order_relaxed);
    }
    /** @} */

    /**
     * Find-or-create the instrument (@p name, @p labels). The
     * returned reference is stable for the registry's lifetime —
     * resolve once per hot site, record lock-free forever. @p help,
     * when non-empty, becomes the family's HELP line (first writer
     * wins). A family must keep one kind: re-requesting it as a
     * different kind is a fatal error.
     */
    Counter &counter(std::string_view name,
                     const MetricLabels &labels = {},
                     std::string_view help = {});
    Gauge &gauge(std::string_view name, const MetricLabels &labels = {},
                 std::string_view help = {});
    Histogram &histogram(std::string_view name,
                         const MetricLabels &labels = {},
                         std::string_view help = {});

    /** @{ Point lookups (0 / empty when absent) for tests and
     *  per-run delta snapshots. */
    uint64_t counterValue(std::string_view name,
                          const MetricLabels &labels = {}) const;
    int64_t gaugeValue(std::string_view name,
                       const MetricLabels &labels = {}) const;
    HistogramSnapshot
    histogramSnapshot(std::string_view name,
                      const MetricLabels &labels = {}) const;
    /** @} */

    /** Prometheus text exposition (deterministic order). */
    std::string prometheusText() const;

    /** One compact JSON object of every instrument. */
    std::string jsonText() const;

  private:
    enum class Kind { Counter, Gauge, Histogram };

    struct Instrument
    {
        std::string name;
        MetricLabels labels;
        Kind kind = Kind::Counter;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Instrument &findOrCreate(std::string_view name,
                             const MetricLabels &labels, Kind kind,
                             std::string_view help);
    const Instrument *find(std::string_view name,
                           const MetricLabels &labels) const;

    mutable std::mutex mutex_;
    /** Keyed on name + '\\x01'-serialized labels: lexicographic map
     *  order groups a family's instruments contiguously, which is
     *  what makes the expositions deterministic. */
    std::map<std::string, Instrument> instruments_;
    std::map<std::string, std::string, std::less<>> help_;
};

} // namespace shmt::common

#endif // SHMT_COMMON_METRICS_REGISTRY_HH

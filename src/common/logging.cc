#include "logging.hh"

#include <atomic>
#include <cstdio>

namespace shmt {

namespace {

std::atomic<LogLevel> global_level{LogLevel::Warn};

} // namespace

LogLevel
logLevel()
{
    return global_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    global_level.store(level, std::memory_order_relaxed);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace detail

} // namespace shmt

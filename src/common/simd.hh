/**
 * @file
 * Portable host SIMD layer: one lane-width-agnostic `simd::VecF` type
 * with AVX2 / SSE / NEON / scalar backends selected at compile time,
 * plus vectorized transcendental kernels (exp/log/tanh/erfc) and the
 * row primitives the staging hot paths are built on (minmax scans,
 * double-precision row sums, INT8 quantize/dequantize rows).
 *
 * Backend selection (first match wins):
 *   SHMT_SIMD_FORCE_SCALAR  -> scalar   (CMake -DSHMT_SIMD_BACKEND=scalar)
 *   __AVX2__                -> avx2     (8 lanes; FMA used when __FMA__)
 *   __SSE2__ / x86-64       -> sse      (4 lanes; roundps when __SSE4_1__)
 *   __ARM_NEON + __aarch64__-> neon     (4 lanes)
 *   otherwise               -> scalar   (1 lane)
 *
 * Numeric contract: every operation that exists in IEEE-754 (add, sub,
 * mul, div, sqrt, min/max, round-to-nearest-even) is exact and matches
 * the scalar equivalent bit-for-bit, so kernels built only from those
 * (and which preserve the scalar accumulation order) can declare
 * `KernelInfo::bitIdentical`. The polynomial kernels (vexp/vlog/
 * vtanh/verfc) are approximations: a few ULP from libm, validated by
 * the ULP-bounded kernel tests. FMA is only used inside polynomial
 * kernels — never in bit-identical paths (the build also pins
 * -ffp-contract=off so the compiler cannot contract the scalar
 * references behind our back).
 */

#ifndef SHMT_COMMON_SIMD_HH
#define SHMT_COMMON_SIMD_HH

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>

#if defined(SHMT_SIMD_FORCE_SCALAR)
#define SHMT_SIMD_SCALAR 1
#elif defined(__AVX2__)
#define SHMT_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#define SHMT_SIMD_SSE 1
#include <emmintrin.h>
#ifdef __SSE4_1__
#include <smmintrin.h>
#endif
#elif defined(__ARM_NEON) && defined(__aarch64__)
#define SHMT_SIMD_NEON 1
#include <arm_neon.h>
#else
#define SHMT_SIMD_SCALAR 1
#endif

namespace shmt::simd {

#if SHMT_SIMD_AVX2

/** 8-lane float vector (AVX2). */
struct VecF
{
    __m256 v;
    static constexpr size_t kWidth = 8;

    static VecF load(const float *p) { return {_mm256_loadu_ps(p)}; }
    void store(float *p) const { _mm256_storeu_ps(p, v); }
    /** Aligned entry points (p must be kWidth*4-byte aligned): same
     *  bits as load/store, cheaper address path on older cores. */
    static VecF loadAligned(const float *p) { return {_mm256_load_ps(p)}; }
    void storeAligned(float *p) const { _mm256_store_ps(p, v); }
    static VecF broadcast(float x) { return {_mm256_set1_ps(x)}; }
    static VecF zero() { return {_mm256_setzero_ps()}; }

    friend VecF operator+(VecF a, VecF b) { return {_mm256_add_ps(a.v, b.v)}; }
    friend VecF operator-(VecF a, VecF b) { return {_mm256_sub_ps(a.v, b.v)}; }
    friend VecF operator*(VecF a, VecF b) { return {_mm256_mul_ps(a.v, b.v)}; }
    friend VecF operator/(VecF a, VecF b) { return {_mm256_div_ps(a.v, b.v)}; }

    /** Lane-wise `a > b ? a : b` bit-for-bit: MAXPS returns the second
     *  source on NaN and on equal (signed) zeros, so the natural
     *  operand order reproduces the ternary exactly — including
     *  max(NaN, b) == b and max(-0.0, +0.0) == +0.0. */
    static VecF max(VecF a, VecF b) { return {_mm256_max_ps(a.v, b.v)}; }
    static VecF min(VecF a, VecF b) { return {_mm256_min_ps(a.v, b.v)}; }
    static VecF sqrt(VecF a) { return {_mm256_sqrt_ps(a.v)}; }
    static VecF
    abs(VecF a)
    {
        return {_mm256_andnot_ps(_mm256_set1_ps(-0.0f), a.v)};
    }
    static VecF
    neg(VecF a)
    {
        return {_mm256_xor_ps(a.v, _mm256_set1_ps(-0.0f))};
    }
    /** Round to nearest, ties to even (matches std::nearbyint). */
    static VecF
    round(VecF a)
    {
        return {_mm256_round_ps(
            a.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)};
    }
    /** a*b + c. True FMA when available — polynomial kernels only. */
    static VecF
    fmadd(VecF a, VecF b, VecF c)
    {
#ifdef __FMA__
        return {_mm256_fmadd_ps(a.v, b.v, c.v)};
#else
        return a * b + c;
#endif
    }

    static VecF cmpLt(VecF a, VecF b) { return {_mm256_cmp_ps(a.v, b.v, _CMP_LT_OQ)}; }
    static VecF cmpLe(VecF a, VecF b) { return {_mm256_cmp_ps(a.v, b.v, _CMP_LE_OQ)}; }
    /** mask ? a : b (mask lanes all-ones or all-zero). */
    static VecF
    select(VecF mask, VecF a, VecF b)
    {
        return {_mm256_blendv_ps(b.v, a.v, mask.v)};
    }
    static VecF orBits(VecF a, VecF b) { return {_mm256_or_ps(a.v, b.v)}; }
    static VecF andBits(VecF a, VecF b) { return {_mm256_and_ps(a.v, b.v)}; }
    static VecF signBits(VecF a) { return andBits(a, broadcast(-0.0f)); }

    /** 2^n for integral-valued n in [-126, 128] (128 -> +inf). */
    static VecF
    exp2i(VecF n)
    {
        __m256i e = _mm256_cvtps_epi32(n.v);
        e = _mm256_add_epi32(e, _mm256_set1_epi32(127));
        e = _mm256_slli_epi32(e, 23);
        return {_mm256_castsi256_ps(e)};
    }
    /** Mantissa of positive normal x, rescaled into [0.5, 1). */
    static VecF
    logMantissa(VecF x)
    {
        __m256i b = _mm256_castps_si256(x.v);
        b = _mm256_and_si256(b, _mm256_set1_epi32(0x007fffff));
        b = _mm256_or_si256(b, _mm256_set1_epi32(0x3f000000));
        return {_mm256_castsi256_ps(b)};
    }
    /** Exponent of positive normal x such that x = mant * 2^(e-1). */
    static VecF
    logExponent(VecF x)
    {
        __m256i b = _mm256_srli_epi32(_mm256_castps_si256(x.v), 23);
        b = _mm256_sub_epi32(b, _mm256_set1_epi32(126));
        return {_mm256_cvtepi32_ps(b)};
    }

    static float
    hmin(VecF a)
    {
        __m128 m = _mm_min_ps(_mm256_castps256_ps128(a.v),
                              _mm256_extractf128_ps(a.v, 1));
        m = _mm_min_ps(m, _mm_movehl_ps(m, m));
        m = _mm_min_ss(m, _mm_shuffle_ps(m, m, 1));
        return _mm_cvtss_f32(m);
    }
    static float
    hmax(VecF a)
    {
        __m128 m = _mm_max_ps(_mm256_castps256_ps128(a.v),
                              _mm256_extractf128_ps(a.v, 1));
        m = _mm_max_ps(m, _mm_movehl_ps(m, m));
        m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
        return _mm_cvtss_f32(m);
    }
};

inline constexpr const char *
backendName()
{
    return "avx2";
}

#elif SHMT_SIMD_SSE

/** 4-lane float vector (SSE2 baseline, SSE4.1 fast paths). */
struct VecF
{
    __m128 v;
    static constexpr size_t kWidth = 4;

    static VecF load(const float *p) { return {_mm_loadu_ps(p)}; }
    void store(float *p) const { _mm_storeu_ps(p, v); }
    /** Aligned entry points (16-byte aligned @p p); bit-identical. */
    static VecF loadAligned(const float *p) { return {_mm_load_ps(p)}; }
    void storeAligned(float *p) const { _mm_store_ps(p, v); }
    static VecF broadcast(float x) { return {_mm_set1_ps(x)}; }
    static VecF zero() { return {_mm_setzero_ps()}; }

    friend VecF operator+(VecF a, VecF b) { return {_mm_add_ps(a.v, b.v)}; }
    friend VecF operator-(VecF a, VecF b) { return {_mm_sub_ps(a.v, b.v)}; }
    friend VecF operator*(VecF a, VecF b) { return {_mm_mul_ps(a.v, b.v)}; }
    friend VecF operator/(VecF a, VecF b) { return {_mm_div_ps(a.v, b.v)}; }

    /** `a > b ? a : b` bit-for-bit (see the AVX2 backend's note). */
    static VecF max(VecF a, VecF b) { return {_mm_max_ps(a.v, b.v)}; }
    static VecF min(VecF a, VecF b) { return {_mm_min_ps(a.v, b.v)}; }
    static VecF sqrt(VecF a) { return {_mm_sqrt_ps(a.v)}; }
    static VecF
    abs(VecF a)
    {
        return {_mm_andnot_ps(_mm_set1_ps(-0.0f), a.v)};
    }
    static VecF neg(VecF a) { return {_mm_xor_ps(a.v, _mm_set1_ps(-0.0f))}; }
    static VecF
    round(VecF a)
    {
#ifdef __SSE4_1__
        return {_mm_round_ps(a.v,
                             _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)};
#else
        // cvtps_epi32 rounds to nearest-even; |x| >= 2^23 is already
        // integral (and may not fit int32), so keep those lanes as-is.
        const __m128 r =
            _mm_cvtepi32_ps(_mm_cvtps_epi32(a.v));
        const __m128 small = _mm_cmplt_ps(
            _mm_andnot_ps(_mm_set1_ps(-0.0f), a.v), _mm_set1_ps(8388608.0f));
        return {_mm_or_ps(_mm_and_ps(small, r), _mm_andnot_ps(small, a.v))};
#endif
    }
    static VecF fmadd(VecF a, VecF b, VecF c) { return a * b + c; }

    static VecF cmpLt(VecF a, VecF b) { return {_mm_cmplt_ps(a.v, b.v)}; }
    static VecF cmpLe(VecF a, VecF b) { return {_mm_cmple_ps(a.v, b.v)}; }
    static VecF
    select(VecF mask, VecF a, VecF b)
    {
#ifdef __SSE4_1__
        return {_mm_blendv_ps(b.v, a.v, mask.v)};
#else
        return {_mm_or_ps(_mm_and_ps(mask.v, a.v),
                          _mm_andnot_ps(mask.v, b.v))};
#endif
    }
    static VecF orBits(VecF a, VecF b) { return {_mm_or_ps(a.v, b.v)}; }
    static VecF andBits(VecF a, VecF b) { return {_mm_and_ps(a.v, b.v)}; }
    static VecF signBits(VecF a) { return andBits(a, broadcast(-0.0f)); }

    static VecF
    exp2i(VecF n)
    {
        __m128i e = _mm_cvtps_epi32(n.v);
        e = _mm_add_epi32(e, _mm_set1_epi32(127));
        e = _mm_slli_epi32(e, 23);
        return {_mm_castsi128_ps(e)};
    }
    static VecF
    logMantissa(VecF x)
    {
        __m128i b = _mm_castps_si128(x.v);
        b = _mm_and_si128(b, _mm_set1_epi32(0x007fffff));
        b = _mm_or_si128(b, _mm_set1_epi32(0x3f000000));
        return {_mm_castsi128_ps(b)};
    }
    static VecF
    logExponent(VecF x)
    {
        __m128i b = _mm_srli_epi32(_mm_castps_si128(x.v), 23);
        b = _mm_sub_epi32(b, _mm_set1_epi32(126));
        return {_mm_cvtepi32_ps(b)};
    }

    static float
    hmin(VecF a)
    {
        __m128 m = _mm_min_ps(a.v, _mm_movehl_ps(a.v, a.v));
        m = _mm_min_ss(m, _mm_shuffle_ps(m, m, 1));
        return _mm_cvtss_f32(m);
    }
    static float
    hmax(VecF a)
    {
        __m128 m = _mm_max_ps(a.v, _mm_movehl_ps(a.v, a.v));
        m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
        return _mm_cvtss_f32(m);
    }
};

inline constexpr const char *
backendName()
{
#ifdef __SSE4_1__
    return "sse4";
#else
    return "sse2";
#endif
}

#elif SHMT_SIMD_NEON

/** 4-lane float vector (AArch64 NEON). */
struct VecF
{
    float32x4_t v;
    static constexpr size_t kWidth = 4;

    static VecF load(const float *p) { return {vld1q_f32(p)}; }
    void store(float *p) const { vst1q_f32(p, v); }
    /** NEON has no distinct aligned forms; same instruction. */
    static VecF loadAligned(const float *p) { return {vld1q_f32(p)}; }
    void storeAligned(float *p) const { vst1q_f32(p, v); }
    static VecF broadcast(float x) { return {vdupq_n_f32(x)}; }
    static VecF zero() { return {vdupq_n_f32(0.0f)}; }

    friend VecF operator+(VecF a, VecF b) { return {vaddq_f32(a.v, b.v)}; }
    friend VecF operator-(VecF a, VecF b) { return {vsubq_f32(a.v, b.v)}; }
    friend VecF operator*(VecF a, VecF b) { return {vmulq_f32(a.v, b.v)}; }
    friend VecF operator/(VecF a, VecF b) { return {vdivq_f32(a.v, b.v)}; }

    /** a > b ? a : b, returning b on NaN (bit-compatible with x86). */
    static VecF
    max(VecF a, VecF b)
    {
        const uint32x4_t gt = vcgtq_f32(a.v, b.v);
        return {vbslq_f32(gt, a.v, b.v)};
    }
    static VecF
    min(VecF a, VecF b)
    {
        const uint32x4_t lt = vcltq_f32(a.v, b.v);
        return {vbslq_f32(lt, a.v, b.v)};
    }
    static VecF sqrt(VecF a) { return {vsqrtq_f32(a.v)}; }
    static VecF abs(VecF a) { return {vabsq_f32(a.v)}; }
    static VecF neg(VecF a) { return {vnegq_f32(a.v)}; }
    static VecF round(VecF a) { return {vrndnq_f32(a.v)}; }
    static VecF
    fmadd(VecF a, VecF b, VecF c)
    {
        return {vfmaq_f32(c.v, a.v, b.v)};
    }

    static VecF
    cmpLt(VecF a, VecF b)
    {
        return {vreinterpretq_f32_u32(vcltq_f32(a.v, b.v))};
    }
    static VecF
    cmpLe(VecF a, VecF b)
    {
        return {vreinterpretq_f32_u32(vcleq_f32(a.v, b.v))};
    }
    static VecF
    select(VecF mask, VecF a, VecF b)
    {
        return {vbslq_f32(vreinterpretq_u32_f32(mask.v), a.v, b.v)};
    }
    static VecF
    orBits(VecF a, VecF b)
    {
        return {vreinterpretq_f32_u32(vorrq_u32(
            vreinterpretq_u32_f32(a.v), vreinterpretq_u32_f32(b.v)))};
    }
    static VecF
    andBits(VecF a, VecF b)
    {
        return {vreinterpretq_f32_u32(vandq_u32(
            vreinterpretq_u32_f32(a.v), vreinterpretq_u32_f32(b.v)))};
    }
    static VecF signBits(VecF a) { return andBits(a, broadcast(-0.0f)); }

    static VecF
    exp2i(VecF n)
    {
        int32x4_t e = vcvtq_s32_f32(n.v);
        e = vaddq_s32(e, vdupq_n_s32(127));
        e = vshlq_n_s32(e, 23);
        return {vreinterpretq_f32_s32(e)};
    }
    static VecF
    logMantissa(VecF x)
    {
        uint32x4_t b = vreinterpretq_u32_f32(x.v);
        b = vandq_u32(b, vdupq_n_u32(0x007fffffu));
        b = vorrq_u32(b, vdupq_n_u32(0x3f000000u));
        return {vreinterpretq_f32_u32(b)};
    }
    static VecF
    logExponent(VecF x)
    {
        int32x4_t b = vreinterpretq_s32_f32(x.v);
        b = vshrq_n_s32(b, 23);
        b = vsubq_s32(b, vdupq_n_s32(126));
        return {vcvtq_f32_s32(b)};
    }

    static float hmin(VecF a) { return vminvq_f32(a.v); }
    static float hmax(VecF a) { return vmaxvq_f32(a.v); }
};

inline constexpr const char *
backendName()
{
    return "neon";
}

#else // scalar fallback

/** 1-lane "vector": the portable reference backend. */
struct VecF
{
    float v;
    static constexpr size_t kWidth = 1;

    static VecF load(const float *p) { return {*p}; }
    void store(float *p) const { *p = v; }
    /** Scalar fallback: alignment is moot; same access. */
    static VecF loadAligned(const float *p) { return {*p}; }
    void storeAligned(float *p) const { *p = v; }
    static VecF broadcast(float x) { return {x}; }
    static VecF zero() { return {0.0f}; }

    friend VecF operator+(VecF a, VecF b) { return {a.v + b.v}; }
    friend VecF operator-(VecF a, VecF b) { return {a.v - b.v}; }
    friend VecF operator*(VecF a, VecF b) { return {a.v * b.v}; }
    friend VecF operator/(VecF a, VecF b) { return {a.v / b.v}; }

    static VecF max(VecF a, VecF b) { return {a.v > b.v ? a.v : b.v}; }
    static VecF min(VecF a, VecF b) { return {a.v < b.v ? a.v : b.v}; }
    static VecF sqrt(VecF a) { return {std::sqrt(a.v)}; }
    static VecF abs(VecF a) { return {std::fabs(a.v)}; }
    static VecF neg(VecF a) { return fromBits(bits(a) ^ 0x80000000u); }
    static VecF round(VecF a) { return {std::nearbyintf(a.v)}; }
    static VecF fmadd(VecF a, VecF b, VecF c) { return {a.v * b.v + c.v}; }

    static uint32_t bits(VecF a) { return std::bit_cast<uint32_t>(a.v); }
    static VecF fromBits(uint32_t b) { return {std::bit_cast<float>(b)}; }

    static VecF cmpLt(VecF a, VecF b) { return fromBits(a.v < b.v ? 0xffffffffu : 0u); }
    static VecF cmpLe(VecF a, VecF b) { return fromBits(a.v <= b.v ? 0xffffffffu : 0u); }
    static VecF
    select(VecF mask, VecF a, VecF b)
    {
        return fromBits((bits(mask) & bits(a)) | (~bits(mask) & bits(b)));
    }
    static VecF orBits(VecF a, VecF b) { return fromBits(bits(a) | bits(b)); }
    static VecF andBits(VecF a, VecF b) { return fromBits(bits(a) & bits(b)); }
    static VecF signBits(VecF a) { return fromBits(bits(a) & 0x80000000u); }

    static VecF
    exp2i(VecF n)
    {
        const int32_t e = static_cast<int32_t>(n.v) + 127;
        return fromBits(static_cast<uint32_t>(e) << 23);
    }
    static VecF
    logMantissa(VecF x)
    {
        return fromBits((bits(x) & 0x007fffffu) | 0x3f000000u);
    }
    static VecF
    logExponent(VecF x)
    {
        return {static_cast<float>(
            static_cast<int32_t>(bits(x) >> 23) - 126)};
    }

    static float hmin(VecF a) { return a.v; }
    static float hmax(VecF a) { return a.v; }
};

inline constexpr const char *
backendName()
{
    return "scalar";
}

#endif

inline constexpr size_t kFloatLanes = VecF::kWidth;

// ---------------------------------------------------------------------------
// Vectorized transcendentals (polynomial kernels; NOT bit-identical to
// libm — covered by the ULP-bounded kernel tests).
// ---------------------------------------------------------------------------

/** e^x, Cephes-style: ~2 ULP over the normal range; underflows to 0,
 *  overflows to +inf. */
inline VecF
vexp(VecF x)
{
    const VecF lo = VecF::broadcast(-87.3365447505531f);
    const VecF underflow = VecF::cmpLt(x, lo);
    // Constant first: min/max return the second operand on NaN, so a
    // NaN input survives the clamp and the result stays NaN.
    x = VecF::min(VecF::broadcast(88.3762626647950f), x);
    // Underflowing lanes compute exp(0) instead of exp(lo): their
    // result is masked to 0 below either way, and exp(lo) ~= FLT_MIN
    // would emit a denormal product whose stall penalty dominates the
    // whole kernel on wide-range inputs (e.g. Blackscholes tails).
    x = VecF::select(underflow, VecF::zero(), x);

    const VecF fx =
        VecF::round(x * VecF::broadcast(1.44269504088896341f));
    x = x - fx * VecF::broadcast(0.693359375f);
    x = x - fx * VecF::broadcast(-2.12194440e-4f);

    VecF y = VecF::broadcast(1.9875691500e-4f);
    y = VecF::fmadd(y, x, VecF::broadcast(1.3981999507e-3f));
    y = VecF::fmadd(y, x, VecF::broadcast(8.3334519073e-3f));
    y = VecF::fmadd(y, x, VecF::broadcast(4.1665795894e-2f));
    y = VecF::fmadd(y, x, VecF::broadcast(1.6666665459e-1f));
    y = VecF::fmadd(y, x, VecF::broadcast(5.0000001201e-1f));
    y = VecF::fmadd(y, x * x, x);
    y = y + VecF::broadcast(1.0f);
    y = y * VecF::exp2i(fx);
    return VecF::select(underflow, VecF::zero(), y);
}

/** ln(x), Cephes-style: ~2 ULP. x=0 -> -inf, x<0 -> NaN; denormal
 *  inputs are flushed to the smallest normal first. */
inline VecF
vlog(VecF x)
{
    const VecF zero_mask = VecF::cmpLe(x, VecF::zero());
    const VecF neg_mask = VecF::cmpLt(x, VecF::zero());
    // Constant first so a NaN input survives the denormal flush.
    x = VecF::max(VecF::broadcast(1.17549435e-38f), x);

    VecF e = VecF::logExponent(x);
    x = VecF::logMantissa(x);

    const VecF half_mask =
        VecF::cmpLt(x, VecF::broadcast(0.707106781186547524f));
    e = e - VecF::select(half_mask, VecF::broadcast(1.0f), VecF::zero());
    x = (x - VecF::broadcast(1.0f)) +
        VecF::select(half_mask, x, VecF::zero());

    const VecF z = x * x;
    VecF y = VecF::broadcast(7.0376836292e-2f);
    y = VecF::fmadd(y, x, VecF::broadcast(-1.1514610310e-1f));
    y = VecF::fmadd(y, x, VecF::broadcast(1.1676998740e-1f));
    y = VecF::fmadd(y, x, VecF::broadcast(-1.2420140846e-1f));
    y = VecF::fmadd(y, x, VecF::broadcast(1.4249322787e-1f));
    y = VecF::fmadd(y, x, VecF::broadcast(-1.6668057665e-1f));
    y = VecF::fmadd(y, x, VecF::broadcast(2.0000714765e-1f));
    y = VecF::fmadd(y, x, VecF::broadcast(-2.4999993993e-1f));
    y = VecF::fmadd(y, x, VecF::broadcast(3.3333331174e-1f));
    y = y * x * z;
    y = y + e * VecF::broadcast(-2.12194440e-4f);
    y = y - z * VecF::broadcast(0.5f);
    x = x + y;
    x = x + e * VecF::broadcast(0.693359375f);

    x = VecF::select(zero_mask,
                     VecF::broadcast(-std::numeric_limits<float>::infinity()),
                     x);
    return VecF::select(
        neg_mask,
        VecF::broadcast(std::numeric_limits<float>::quiet_NaN()), x);
}

/** erfc(x), Numerical-Recipes rational Chebyshev fit: relative error
 *  < ~1.3e-7 everywhere (plus the vexp error). */
inline VecF
verfc(VecF x)
{
    const VecF z = VecF::abs(x);
    const VecF one = VecF::broadcast(1.0f);
    const VecF t = one / (one + VecF::broadcast(0.5f) * z);

    VecF p = VecF::broadcast(0.17087277f);
    p = VecF::fmadd(p, t, VecF::broadcast(-0.82215223f));
    p = VecF::fmadd(p, t, VecF::broadcast(1.48851587f));
    p = VecF::fmadd(p, t, VecF::broadcast(-1.13520398f));
    p = VecF::fmadd(p, t, VecF::broadcast(0.27886807f));
    p = VecF::fmadd(p, t, VecF::broadcast(-0.18628806f));
    p = VecF::fmadd(p, t, VecF::broadcast(0.09678418f));
    p = VecF::fmadd(p, t, VecF::broadcast(0.37409196f));
    p = VecF::fmadd(p, t, VecF::broadcast(1.00002368f));
    p = VecF::fmadd(p, t, VecF::broadcast(-1.26551223f));

    const VecF ans = t * vexp(p - z * z);
    const VecF neg = VecF::cmpLt(x, VecF::zero());
    return VecF::select(neg, VecF::broadcast(2.0f) - ans, ans);
}

/** Standard normal CDF: 0.5 * erfc(-x / sqrt(2)). */
inline VecF
vncdf(VecF x)
{
    return VecF::broadcast(0.5f) *
           verfc(VecF::neg(x * VecF::broadcast(0.70710678118654752440f)));
}

/** tanh(x), Cephes-style (polynomial below 0.625, exp form above). */
inline VecF
vtanh(VecF x)
{
    const VecF z = VecF::abs(x);
    const VecF one = VecF::broadcast(1.0f);

    // |x| >= 0.625: 1 - 2/(e^{2|x|}+1), sign restored.
    const VecF e = vexp(z + z);
    VecF big = one - VecF::broadcast(2.0f) / (e + one);
    big = VecF::orBits(big, VecF::signBits(x));

    // |x| < 0.625: x + x*s*P(s).
    const VecF s = x * x;
    VecF p = VecF::broadcast(-5.70498872745e-3f);
    p = VecF::fmadd(p, s, VecF::broadcast(2.06390887954e-2f));
    p = VecF::fmadd(p, s, VecF::broadcast(-5.37397155531e-2f));
    p = VecF::fmadd(p, s, VecF::broadcast(1.33314422036e-1f));
    p = VecF::fmadd(p, s, VecF::broadcast(-3.33332819422e-1f));
    const VecF small = VecF::fmadd(x * s, p, x);

    return VecF::select(VecF::cmpLt(z, VecF::broadcast(0.625f)), small,
                        big);
}

// ---------------------------------------------------------------------------
// Row primitives for the staging hot paths.
//
// Pool-leased buffers are 64-byte aligned (common::MemoryPool), so
// the primitives dispatch to the aligned load/store entry points when
// the operand pointers satisfy the backend's vector alignment. The
// aligned and unaligned paths read/write the same bits — dispatch is
// a pure address-path optimization, bit-identical by construction.
// ---------------------------------------------------------------------------

/** True when @p p is aligned for this backend's vector accesses. */
inline bool
vecAligned(const void *p)
{
    return (reinterpret_cast<uintptr_t>(p) &
            (VecF::kWidth * sizeof(float) - 1)) == 0;
}

namespace detail {
/** Load/store policies for the alignment dispatch below. */
struct LoadU
{
    VecF operator()(const float *p) const { return VecF::load(p); }
};
struct LoadA
{
    VecF operator()(const float *p) const { return VecF::loadAligned(p); }
};
struct StoreU
{
    void operator()(float *p, VecF v) const { v.store(p); }
};
struct StoreA
{
    void operator()(float *p, VecF v) const { v.storeAligned(p); }
};
} // namespace detail

/** Fold the min/max of p[0..n) into (lo, hi). Exact for finite data,
 *  where min/max folds are order-independent. NaN elements are NOT
 *  part of the contract: a sequential `a > v ? a : v` fold adopts a
 *  NaN and drops it at the next element (so only a trailing NaN
 *  survives), which a lane-parallel fold cannot reproduce — here the
 *  result in the presence of NaN is unspecified. Callers stage finite
 *  data only. */
inline void
rowMinMax(const float *p, size_t n, float &lo, float &hi)
{
    size_t i = 0;
    if constexpr (VecF::kWidth > 1) {
        if (n >= VecF::kWidth) {
            const auto scan = [&](auto load) {
                VecF vlo = load(p);
                VecF vhi = vlo;
                for (i = VecF::kWidth; i + VecF::kWidth <= n;
                     i += VecF::kWidth) {
                    const VecF v = load(p + i);
                    vlo = VecF::min(vlo, v);
                    vhi = VecF::max(vhi, v);
                }
                lo = std::min(lo, VecF::hmin(vlo));
                hi = std::max(hi, VecF::hmax(vhi));
            };
            if (vecAligned(p))
                scan(detail::LoadA{});
            else
                scan(detail::LoadU{});
        }
    }
    for (; i < n; ++i) {
        lo = std::min(lo, p[i]);
        hi = std::max(hi, p[i]);
    }
}

/** Row sum in double precision: lane-split partial sums combined in a
 *  fixed order (deterministic per backend; within ~1 float ULP of the
 *  serial double sum). */
inline double
rowSumDouble(const float *p, size_t n)
{
#if SHMT_SIMD_AVX2
    size_t i = 0;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (; i + 8 <= n; i += 8) {
        const __m128 lo = _mm_loadu_ps(p + i);
        const __m128 hi = _mm_loadu_ps(p + i + 4);
        acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(lo));
        acc1 = _mm256_add_pd(acc1, _mm256_cvtps_pd(hi));
    }
    const __m256d acc = _mm256_add_pd(acc0, acc1);
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    double sum = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
    for (; i < n; ++i)
        sum += static_cast<double>(p[i]);
    return sum;
#elif SHMT_SIMD_SSE
    size_t i = 0;
    __m128d acc0 = _mm_setzero_pd();
    __m128d acc1 = _mm_setzero_pd();
    for (; i + 4 <= n; i += 4) {
        const __m128 v = _mm_loadu_ps(p + i);
        acc0 = _mm_add_pd(acc0, _mm_cvtps_pd(v));
        acc1 = _mm_add_pd(acc1,
                          _mm_cvtps_pd(_mm_movehl_ps(v, v)));
    }
    const __m128d acc = _mm_add_pd(acc0, acc1);
    alignas(16) double lanes[2];
    _mm_store_pd(lanes, acc);
    double sum = lanes[0] + lanes[1];
    for (; i < n; ++i)
        sum += static_cast<double>(p[i]);
    return sum;
#elif SHMT_SIMD_NEON
    size_t i = 0;
    float64x2_t acc0 = vdupq_n_f64(0.0);
    float64x2_t acc1 = vdupq_n_f64(0.0);
    for (; i + 4 <= n; i += 4) {
        const float32x4_t v = vld1q_f32(p + i);
        acc0 = vaddq_f64(acc0, vcvt_f64_f32(vget_low_f32(v)));
        acc1 = vaddq_f64(acc1, vcvt_f64_f32(vget_high_f32(v)));
    }
    const float64x2_t acc = vaddq_f64(acc0, acc1);
    double sum = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
    for (; i < n; ++i)
        sum += static_cast<double>(p[i]);
    return sum;
#else
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i)
        sum += static_cast<double>(p[i]);
    return sum;
#endif
}

/**
 * Affine-quantize a row: dst[i] = int8(clamp(nearbyint(src[i]/scale +
 * zp), -128, 127)). Bit-identical to QuantParams::quantize (true
 * division, round-to-nearest-even, saturating narrow).
 */
inline void
quantizeRow(const float *src, int8_t *dst, size_t n, float scale,
            int32_t zero_point)
{
    [[maybe_unused]] const VecF vscale = VecF::broadcast(scale);
    [[maybe_unused]] const VecF vzp =
        VecF::broadcast(static_cast<float>(zero_point));
    size_t i = 0;
#if SHMT_SIMD_AVX2
    const auto pass = [&](auto load) {
        for (; i + 8 <= n; i += 8) {
            const VecF q = VecF::round(load(src + i) / vscale + vzp);
            const __m256i qi = _mm256_cvtps_epi32(q.v);
            const __m128i lo = _mm256_castsi256_si128(qi);
            const __m128i hi = _mm256_extracti128_si256(qi, 1);
            const __m128i w = _mm_packs_epi32(lo, hi); // saturate to i16
            const __m128i b = _mm_packs_epi16(w, w);   // saturate to i8
            _mm_storel_epi64(reinterpret_cast<__m128i *>(dst + i), b);
        }
    };
    if (vecAligned(src))
        pass(detail::LoadA{});
    else
        pass(detail::LoadU{});
#elif SHMT_SIMD_SSE
    const auto pass = [&](auto load) {
        for (; i + 4 <= n; i += 4) {
            const VecF q = VecF::round(load(src + i) / vscale + vzp);
            const __m128i qi = _mm_cvtps_epi32(q.v);
            const __m128i w = _mm_packs_epi32(qi, qi);
            const __m128i b = _mm_packs_epi16(w, w);
            const int32_t packed = _mm_cvtsi128_si32(b);
            std::memcpy(dst + i, &packed, 4);
        }
    };
    if (vecAligned(src))
        pass(detail::LoadA{});
    else
        pass(detail::LoadU{});
#elif SHMT_SIMD_NEON
    const auto pass = [&](auto load) {
        for (; i + 4 <= n; i += 4) {
            const VecF q = VecF::round(load(src + i) / vscale + vzp);
            // Clamp in float (q is integral), then narrow.
            const VecF qc =
                VecF::min(VecF::max(q, VecF::broadcast(-128.0f)),
                          VecF::broadcast(127.0f));
            const int32x4_t qi = vcvtq_s32_f32(qc.v);
            const int16x4_t w = vqmovn_s32(qi);
            const int8x8_t b = vqmovn_s16(vcombine_s16(w, w));
            const int32_t packed =
                vget_lane_s32(vreinterpret_s32_s8(b), 0);
            std::memcpy(dst + i, &packed, 4);
        }
    };
    if (vecAligned(src))
        pass(detail::LoadA{});
    else
        pass(detail::LoadU{});
#endif
    for (; i < n; ++i) {
        const float q = std::nearbyintf(
            src[i] / scale + static_cast<float>(zero_point));
        const int32_t qi = static_cast<int32_t>(q);
        dst[i] = static_cast<int8_t>(
            qi < -128 ? -128 : (qi > 127 ? 127 : qi));
    }
}

/** Dequantize a row: dst[i] = scale * (src[i] - zp). Bit-identical to
 *  QuantParams::dequantize. */
inline void
dequantizeRow(const int8_t *src, float *dst, size_t n, float scale,
              int32_t zero_point)
{
    [[maybe_unused]] const VecF vscale = VecF::broadcast(scale);
    [[maybe_unused]] const VecF vzp =
        VecF::broadcast(static_cast<float>(zero_point));
    size_t i = 0;
#if SHMT_SIMD_AVX2
    const auto pass = [&](auto store) {
    for (; i + 8 <= n; i += 8) {
        const __m128i b = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(src + i));
        const __m256i qi = _mm256_cvtepi8_epi32(b);
        const VecF q{_mm256_cvtepi32_ps(qi)};
        store(dst + i, vscale * (q - vzp));
    }
    };
    if (vecAligned(dst))
        pass(detail::StoreA{});
    else
        pass(detail::StoreU{});
#elif SHMT_SIMD_SSE
    const auto pass = [&](auto store) {
    for (; i + 4 <= n; i += 4) {
        int32_t packed;
        std::memcpy(&packed, src + i, 4);
        __m128i b = _mm_cvtsi32_si128(packed);
        b = _mm_unpacklo_epi8(b, b);
        b = _mm_unpacklo_epi16(b, b);
        b = _mm_srai_epi32(b, 24);               // sign-extend i8 -> i32
        const VecF q{_mm_cvtepi32_ps(b)};
        store(dst + i, vscale * (q - vzp));
    }
    };
    if (vecAligned(dst))
        pass(detail::StoreA{});
    else
        pass(detail::StoreU{});
#elif SHMT_SIMD_NEON
    const auto pass = [&](auto store) {
    for (; i + 4 <= n; i += 4) {
        int32_t packed;
        std::memcpy(&packed, src + i, 4);
        const int8x8_t b =
            vreinterpret_s8_s32(vdup_n_s32(packed));
        const int16x8_t w = vmovl_s8(b);
        const int32x4_t qi = vmovl_s16(vget_low_s16(w));
        const VecF q{vcvtq_f32_s32(qi)};
        store(dst + i, vscale * (q - vzp));
    }
    };
    if (vecAligned(dst))
        pass(detail::StoreA{});
    else
        pass(detail::StoreU{});
#endif
    for (; i < n; ++i)
        dst[i] = scale * (static_cast<float>(src[i]) -
                          static_cast<float>(zero_point));
}

/**
 * INT8 round-trip of a row entirely in the float domain:
 * dst[i] = scale * (clamp(nearbyint(src[i]/scale + zp)) - zp).
 * Bit-identical to quantize-then-dequantize.
 */
inline void
fakeQuantizeRow(const float *src, float *dst, size_t n, float scale,
                int32_t zero_point)
{
    const VecF vscale = VecF::broadcast(scale);
    const VecF vzp = VecF::broadcast(static_cast<float>(zero_point));
    const VecF vlo = VecF::broadcast(-128.0f);
    const VecF vhi = VecF::broadcast(127.0f);
    size_t i = 0;
    const auto pass = [&](auto load, auto store) {
        for (; i + VecF::kWidth <= n; i += VecF::kWidth) {
            VecF q = VecF::round(load(src + i) / vscale + vzp);
            q = VecF::min(VecF::max(q, vlo), vhi);
            store(dst + i, vscale * (q - vzp));
        }
    };
    if (vecAligned(src) && vecAligned(dst))
        pass(detail::LoadA{}, detail::StoreA{});
    else
        pass(detail::LoadU{}, detail::StoreU{});
    for (; i < n; ++i) {
        const float q = std::nearbyintf(
            src[i] / scale + static_cast<float>(zero_point));
        const int32_t qi = static_cast<int32_t>(
            q < -128.0f ? -128.0f : (q > 127.0f ? 127.0f : q));
        dst[i] = scale * (static_cast<float>(qi) -
                          static_cast<float>(zero_point));
    }
}

} // namespace shmt::simd

#endif // SHMT_COMMON_SIMD_HH

#include "flight_recorder.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

#include "common/metrics_registry.hh"

namespace shmt::common {

namespace {

/** One thread's event ring. All slot words are atomics so a
 *  concurrent dump is race-free by construction; the release store
 *  of head publishes the slot writes that preceded it. */
struct Ring
{
    struct Slot
    {
        std::atomic<uint64_t> ts{0};
        std::atomic<uint64_t> meta{0}; //!< kind<<56 | uint32(code)
        std::atomic<uint64_t> a{0};
        std::atomic<uint64_t> b{0};
    };

    std::atomic<uint64_t> head{0}; //!< events ever recorded here
    uint32_t threadId = 0;         //!< set under the pool lock
    std::array<Slot, FlightRecorder::kRingEvents> slots;

    void
    reset()
    {
        head.store(0, std::memory_order_relaxed);
        for (Slot &s : slots) {
            s.ts.store(0, std::memory_order_relaxed);
            s.meta.store(0, std::memory_order_relaxed);
            s.a.store(0, std::memory_order_relaxed);
            s.b.store(0, std::memory_order_relaxed);
        }
    }
};

/** Process-wide ring pool (leaked: rings must outlive late
 *  thread-local teardown, and dump() may run at any point). */
struct RingPool
{
    std::mutex mu;
    std::vector<std::unique_ptr<Ring>> rings;
    std::vector<Ring *> free;
    uint32_t nextThreadId = 0;
};

RingPool &
pool()
{
    static auto *p = new RingPool();
    return *p;
}

/** Claims a ring for the thread's lifetime, recycling exited
 *  threads' rings (their retained events are dropped on reuse). */
struct RingLease
{
    Ring *ring = nullptr;

    RingLease()
    {
        RingPool &p = pool();
        std::lock_guard<std::mutex> lock(p.mu);
        if (!p.free.empty()) {
            ring = p.free.back();
            p.free.pop_back();
            ring->reset();
        } else {
            p.rings.push_back(std::make_unique<Ring>());
            ring = p.rings.back().get();
        }
        ring->threadId = p.nextThreadId++;
    }

    ~RingLease()
    {
        RingPool &p = pool();
        std::lock_guard<std::mutex> lock(p.mu);
        p.free.push_back(ring);
    }
};

Ring &
threadRing()
{
    thread_local RingLease lease;
    return *lease.ring;
}

uint64_t
nowNanos()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

void
FlightRecorder::record(Kind kind, int32_t code, uint64_t a, uint64_t b)
{
    if (!MetricsRegistry::armed())
        return;
    Ring &ring = threadRing();
    // head is only advanced by the owning thread; the release store
    // publishes the slot for dump()'s acquire load.
    const uint64_t seq = ring.head.load(std::memory_order_relaxed);
    Ring::Slot &slot = ring.slots[seq % kRingEvents];
    slot.ts.store(nowNanos(), std::memory_order_relaxed);
    slot.meta.store((static_cast<uint64_t>(kind) << 56) |
                        static_cast<uint32_t>(code),
                    std::memory_order_relaxed);
    slot.a.store(a, std::memory_order_relaxed);
    slot.b.store(b, std::memory_order_relaxed);
    ring.head.store(seq + 1, std::memory_order_release);
}

std::vector<FlightRecorder::Event>
FlightRecorder::dump()
{
    std::vector<Event> events;
    RingPool &p = pool();
    std::lock_guard<std::mutex> lock(p.mu);
    for (const auto &ring : p.rings) {
        const uint64_t head = ring->head.load(std::memory_order_acquire);
        const uint64_t n = std::min<uint64_t>(head, kRingEvents);
        for (uint64_t seq = head - n; seq < head; ++seq) {
            const Ring::Slot &slot = ring->slots[seq % kRingEvents];
            const uint64_t meta =
                slot.meta.load(std::memory_order_relaxed);
            Event e;
            e.tsNanos = slot.ts.load(std::memory_order_relaxed);
            e.thread = ring->threadId;
            e.kind = static_cast<Kind>(meta >> 56);
            e.code = static_cast<int32_t>(
                static_cast<uint32_t>(meta & 0xffffffffull));
            e.a = slot.a.load(std::memory_order_relaxed);
            e.b = slot.b.load(std::memory_order_relaxed);
            if (e.kind != Kind::None)
                events.push_back(e);
        }
    }
    std::sort(events.begin(), events.end(),
              [](const Event &x, const Event &y) {
                  return x.tsNanos < y.tsNanos;
              });
    return events;
}

std::string_view
FlightRecorder::kindName(Kind kind)
{
    switch (kind) {
    case Kind::None:
        return "none";
    case Kind::RunStart:
        return "run_start";
    case Kind::RunEnd:
        return "run_end";
    case Kind::VopDispatch:
        return "vop_dispatch";
    case Kind::SchedStop:
        return "sched_stop";
    case Kind::FaultRecovered:
        return "fault_recovered";
    case Kind::SessionSubmit:
        return "session_submit";
    case Kind::SessionStart:
        return "session_start";
    case Kind::SessionDone:
        return "session_done";
    case Kind::SessionReject:
        return "session_reject";
    }
    return "unknown";
}

} // namespace shmt::common

/**
 * @file
 * Shared work-stealing host thread pool.
 *
 * The simulator's *timing* is discrete-event and cheap, but every
 * HLOP body, criticality sample, and INT8 staging pass runs
 * functionally on the host. Those per-partition jobs are
 * embarrassingly parallel, so the hot host-side paths (runtime
 * functional execution, QAWS sampling, quantize/dequantize staging)
 * share this pool to overlap them.
 *
 * Structure: one deque per worker plus a global injector queue.
 * External submissions land in the injector; tasks spawned from a
 * worker go to that worker's own deque; an idle worker drains its own
 * deque first, then the injector, then steals from the back of the
 * deepest peer deque.
 *
 * Determinism contract: the pool never introduces ordering into
 * results. `parallelFor` hands out index ranges; callers must make
 * each index's work independent (disjoint outputs, per-index seeds
 * via `taskSeed`) and perform any order-sensitive combine serially
 * afterwards. Under that contract a run is bit-identical for any
 * thread count, which the determinism regression tests enforce.
 */

#ifndef SHMT_COMMON_THREAD_POOL_HH
#define SHMT_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace shmt::common {

/** Work-stealing pool of host threads (caller participates). */
class ThreadPool
{
  public:
    using Task = std::function<void()>;
    /** Chunk body: operates on the half-open index range [lo, hi). */
    using ChunkFn = std::function<void(size_t, size_t)>;

    /**
     * Create a pool with @p threads total execution lanes (the
     * calling thread counts as one lane, so @p threads - 1 workers
     * are spawned). 0 resolves to std::thread::hardware_concurrency.
     */
    explicit ThreadPool(size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total execution lanes (workers + the calling thread). */
    size_t threadCount() const { return workers_.size() + 1; }

    /**
     * Fire-and-forget task submission: to the submitting worker's own
     * deque when called from a pool thread, else to the global
     * injector. Pending tasks are drained before destruction.
     *
     * A task that throws does NOT take the pool down: the worker
     * captures the first exception (siblings keep running) and holds
     * it for takeError(). On a serial pool the task runs inline on the
     * caller, so its exception propagates to the submitter directly.
     */
    void submit(Task task);

    /** Block until every submitted task has finished. */
    void drain();

    /**
     * Retrieve-and-clear the first exception a submitted task threw
     * since the last call (nullptr when none). Deliberately pull-based:
     * the pool is shared across programs, so an error must reach the
     * submitter that polls for it — never a bystander's drain().
     */
    std::exception_ptr takeError();

    /**
     * Run @p body over [@p begin, @p end) in chunks of at least
     * @p grain indices. The caller executes chunks too (so a
     * single-lane pool degrades to a plain serial loop), and nested
     * calls from inside a pool task run inline — both keep the pool
     * deadlock-free. The first exception thrown by any chunk is
     * rethrown in the caller once all chunks finished.
     */
    void parallelFor(size_t begin, size_t end, size_t grain,
                     const ChunkFn &body);

    /** Tasks obtained by stealing from a peer's deque (lifetime). */
    size_t steals() const;

    /** Point-in-time counter snapshot (lifetime totals + live depth). */
    struct Stats
    {
        size_t submitted = 0;   //!< tasks ever submitted (incl. inline)
        size_t steals = 0;      //!< tasks obtained from a peer's deque
        size_t parked = 0;      //!< times a worker slept for lack of work
        size_t queued = 0;      //!< tasks currently queued or executing
        size_t peakQueued = 0;  //!< high-water mark of `queued`
    };

    /** Snapshot the pool counters (consistent under the pool lock). */
    Stats stats() const;

    /**
     * Derive an independent, deterministic seed for task @p stream of
     * a computation seeded with @p base (splitmix composition; equals
     * the runtime's historical `seed ^ hashMix(index)` derivation).
     */
    static uint64_t taskSeed(uint64_t base, uint64_t stream);

    /**
     * The process-wide pool used by the runtime and the staging
     * helpers. Created on first use with the last configured lane
     * count (default: hardware concurrency).
     */
    static ThreadPool &global();

    /**
     * Set the global pool's lane count (0 = hardware concurrency,
     * 1 = serial). Recreates the pool only when the count changes.
     */
    static void configureGlobal(size_t threads);

    /** Lane count @p requested resolves to (0 -> hardware). */
    static size_t resolveThreads(size_t requested);

    /**
     * Convenience: run @p body over [@p begin, @p end) on the global
     * pool, without instantiating it when the range fits one chunk or
     * the configured lane count is 1.
     */
    static void forChunks(size_t begin, size_t end, size_t grain,
                          const ChunkFn &body);

  private:
    struct ParallelState;

    /** True when the current thread is a worker of this pool. */
    bool onWorkerThread() const;

    /** Pop one task for worker @p self; false when queues are empty. */
    bool popTask(size_t self, Task &out);

    void workerLoop(size_t self);

    mutable std::mutex lock_;
    std::condition_variable wake_;       //!< workers wait for tasks
    std::condition_variable idle_;       //!< drain() waits here
    std::deque<Task> injector_;          //!< external submissions
    std::vector<std::deque<Task>> deques_; //!< per-worker deques
    std::vector<std::thread> workers_;
    size_t inflight_ = 0;                //!< queued + executing tasks
    size_t steals_ = 0;
    size_t submitted_ = 0;               //!< lifetime task submissions
    size_t parked_ = 0;                  //!< lifetime worker sleeps
    size_t peakInflight_ = 0;            //!< high-water mark of inflight_
    size_t rr_ = 0;                      //!< round-robin chunk placement
    std::exception_ptr taskError_;       //!< first throwing submit() task
    bool stop_ = false;
};

} // namespace shmt::common

#endif // SHMT_COMMON_THREAD_POOL_HH

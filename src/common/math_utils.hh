/**
 * @file
 * Small numeric helpers shared across SHMT modules.
 */

#ifndef SHMT_COMMON_MATH_UTILS_HH
#define SHMT_COMMON_MATH_UTILS_HH

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace shmt {

/** Integer ceiling division. */
template <typename T>
constexpr T
ceilDiv(T a, T b)
{
    return (a + b - 1) / b;
}

/** Round @p v up to the next multiple of @p m (m > 0). */
template <typename T>
constexpr T
roundUp(T v, T m)
{
    return ceilDiv(v, m) * m;
}

/** True if @p v is a power of two (v > 0). */
constexpr bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Clamp @p v into [lo, hi]. */
template <typename T>
constexpr T
clamp(T v, T lo, T hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/** Geometric mean of a vector of positive values; 0 if empty. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** Arithmetic mean; 0 if empty. */
inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

/** Population standard deviation; 0 if fewer than 2 elements. */
inline double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    const double m = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values.size()));
}

} // namespace shmt

#endif // SHMT_COMMON_MATH_UTILS_HH

#include "memory_pool.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <mutex>
#include <new>
#include <vector>

#include "common/logging.hh"
#include "common/metrics_registry.hh"

namespace shmt::common {

namespace {

// ---------------------------------------------------------------- layout

/** Size classes: even index 2j -> 64<<j bytes, odd 2j+1 -> 96<<j. */
constexpr size_t kNumClasses = 49; // up to 64<<24 = 1 GiB
constexpr size_t kMaxClassBytes = size_t{64} << 24;
/** Classes at or below this are carved from slabs. */
constexpr size_t kSlabClassMaxBytes = 4096;
constexpr size_t kSlabBytes = size_t{256} * 1024;
/** Blocks handed out per slab carve (amortizes the arena lock). */
constexpr size_t kCarveStrip = 8;

constexpr uint32_t kMagic = 0x534d454du; // "SMEM"
constexpr uint32_t kClassHuge = 0xffffffffu;

/** 64-byte prefix in front of every payload. */
struct alignas(MemoryPool::kAlignment) BlockHeader
{
    uint32_t magic;
    uint32_t classIdx;  //!< size-class index, or kClassHuge
    uint64_t bytes;     //!< payload capacity in bytes
    uint32_t fromSlab;  //!< carved from a slab (never freed to the OS)
    uint32_t cacheable; //!< allocated with the pool enabled
};
static_assert(sizeof(BlockHeader) == MemoryPool::kAlignment);

BlockHeader *
headerOf(void *payload)
{
    return reinterpret_cast<BlockHeader *>(
               static_cast<char *>(payload) - sizeof(BlockHeader));
}

size_t
classIndexFor(size_t bytes)
{
    if (bytes <= 64)
        return 0;
    // bytes in (2^(c-1), 2^c]; the candidate below the power of two is
    // 96 << (c - 7) = 1.5 * 2^(c-1).
    const unsigned c = std::bit_width(bytes - 1);
    if (c >= 7 && bytes <= (size_t{96} << (c - 7)))
        return 2 * (c - 7) + 1;
    return 2 * (c - 6);
}

size_t
classBytesOf(size_t idx)
{
    return (idx % 2 == 0 ? size_t{64} : size_t{96}) << (idx / 2);
}

// ---------------------------------------------------------------- stats

/**
 * Pool telemetry lives in the process metrics registry (shmt_mempool_*
 * instruments); these references are resolved once and only touch the
 * registry's relaxed atomics on the hot path. None of this state feeds
 * back into allocation decisions — caps and free-list byte accounting
 * stay in ThreadCache/Spill — so disarming the registry can never
 * perturb allocator behavior, only freeze the telemetry view.
 */
struct Counters
{
    Counter &allocs;
    Counter &reuseHits;
    Counter &spillHits;
    Counter &freshBytes;
    Counter &memsetsAvoided;
    Counter &memsetBytesAvoided;
    Counter &trims;
    Gauge &bytesLive;
    Gauge &peakLive;
    Gauge &cachedBytes;
};

Counters &
counters()
{
    MetricsRegistry &reg = MetricsRegistry::instance();
    static Counters c{
        reg.counter("shmt_mempool_allocs_total", {},
                    "Buffer acquisitions served by the memory pool."),
        reg.counter("shmt_mempool_reuse_hits_total", {},
                    "Acquisitions satisfied from a recycled block."),
        reg.counter("shmt_mempool_spill_hits_total", {},
                    "Reuse hits served from the shared spill arena."),
        reg.counter("shmt_mempool_fresh_bytes_total", {},
                    "Bytes requested from the OS (direct blocks + slabs)."),
        reg.counter("shmt_mempool_memsets_avoided_total", {},
                    "Zero-fills skipped for uninitialized acquisitions."),
        reg.counter("shmt_mempool_memset_bytes_avoided_total", {},
                    "Bytes of zero-fill skipped."),
        reg.counter("shmt_mempool_trims_total", {},
                    "Blocks returned to the OS past the spill cap."),
        reg.gauge("shmt_mempool_bytes_live", {},
                  "Class bytes currently checked out of the pool."),
        reg.gauge("shmt_mempool_peak_live_bytes", {},
                  "High-water mark of live class bytes."),
        reg.gauge("shmt_mempool_cached_bytes", {},
                  "Idle class bytes held in thread caches + spill."),
    };
    return c;
}

void
notePeakLive(int64_t live)
{
    counters().peakLive.noteMax(live);
}

std::atomic<bool> g_enabled{true};

// ---------------------------------------------------------- spill arena

/** Global overflow store + slab arena. Intentionally leaked (function-
 *  local pointer, never deleted) so exiting threads' cache flushes can
 *  never race static destruction. LSan sees it as reachable. */
struct Spill
{
    std::mutex m;
    std::vector<void *> lists[kNumClasses];
    size_t bytes = 0;
    size_t cap = MemoryPool::kDefaultSpillCapBytes;
    std::vector<void *> slabs; //!< raw slab allocations (kept forever)
    char *slabCur = nullptr;
    size_t slabLeft = 0;
};

Spill &
spill()
{
    static Spill *s = new Spill;
    return *s;
}

void
freeDirect(void *payload)
{
    ::operator delete(headerOf(payload),
                      std::align_val_t{MemoryPool::kAlignment});
}

/** Push an idle block to the spill arena (caller holds no locks). */
void
spillBlock(void *payload)
{
    BlockHeader *h = headerOf(payload);
    const size_t classBytes = h->bytes;
    Spill &s = spill();
    {
        std::lock_guard<std::mutex> lock(s.m);
        if (h->fromSlab || s.bytes + classBytes <= s.cap) {
            // Slab blocks always pool (their memory can't go back to
            // the OS); direct blocks respect the spill cap.
            s.lists[h->classIdx].push_back(payload);
            s.bytes += classBytes;
            return;
        }
    }
    counters().trims.add();
    counters().cachedBytes.sub(static_cast<int64_t>(classBytes));
    freeDirect(payload);
}

// --------------------------------------------------------- thread cache

/** Set once this thread's cache has been destroyed (trivially
 *  destructible, so it stays readable through TLS teardown): other
 *  thread_local pool objects (e.g. the GEMM panel scratch) may release
 *  blocks after the cache is gone, and must bypass it. */
thread_local bool t_cacheDead = false;

struct ThreadCache
{
    std::vector<void *> lists[kNumClasses];
    size_t bytes = 0;
    size_t cap = MemoryPool::kDefaultThreadCacheBytes;

    ~ThreadCache()
    {
        flush();
        t_cacheDead = true;
    }

    void
    flush()
    {
        for (auto &list : lists) {
            for (void *p : list)
                spillBlock(p);
            list.clear();
        }
        bytes = 0;
    }

    /** Move blocks to the spill arena until bytes <= cap, draining
     *  the largest classes first (small ones recycle hottest). */
    void
    shed()
    {
        for (size_t idx = kNumClasses; idx-- > 0 && bytes > cap;) {
            auto &list = lists[idx];
            const size_t classBytes = classBytesOf(idx);
            while (!list.empty() && bytes > cap) {
                spillBlock(list.back());
                list.pop_back();
                bytes -= classBytes;
            }
        }
    }
};

ThreadCache &
threadCache()
{
    thread_local ThreadCache tc;
    return tc;
}

/** Allocate a fresh direct block for class @p idx. */
void *
newDirect(size_t idx, size_t classBytes, bool cacheable)
{
    void *raw = ::operator new(sizeof(BlockHeader) + classBytes,
                               std::align_val_t{MemoryPool::kAlignment});
    BlockHeader *h = static_cast<BlockHeader *>(raw);
    h->magic = kMagic;
    h->classIdx = static_cast<uint32_t>(idx);
    h->bytes = classBytes;
    h->fromSlab = 0;
    h->cacheable = cacheable ? 1 : 0;
    counters().freshBytes.add(classBytes);
    return h + 1;
}

/**
 * Carve a strip of blocks for small class @p idx from the slab arena:
 * one is returned, the rest land in this thread's free list.
 */
void *
carveStrip(size_t idx, size_t classBytes, ThreadCache *tc)
{
    // Rounded up so every carved header (and thus payload) stays on
    // an alignment boundary — 96-family classes are not multiples of
    // the block alignment.
    const size_t footprint =
        (sizeof(BlockHeader) + classBytes + MemoryPool::kAlignment - 1) &
        ~(MemoryPool::kAlignment - 1);
    const size_t strip = tc != nullptr ? kCarveStrip : 1;
    void *first = nullptr;
    size_t carved = 0;
    Spill &s = spill();
    {
        std::lock_guard<std::mutex> lock(s.m);
        for (; carved < strip; ++carved) {
            if (s.slabLeft < footprint) {
                void *slab = ::operator new(
                    kSlabBytes, std::align_val_t{MemoryPool::kAlignment});
                s.slabs.push_back(slab);
                s.slabCur = static_cast<char *>(slab);
                s.slabLeft = kSlabBytes;
                counters().freshBytes.add(kSlabBytes);
            }
            BlockHeader *h = reinterpret_cast<BlockHeader *>(s.slabCur);
            s.slabCur += footprint;
            s.slabLeft -= footprint;
            h->magic = kMagic;
            h->classIdx = static_cast<uint32_t>(idx);
            h->bytes = classBytes;
            h->fromSlab = 1;
            h->cacheable = 1;
            if (first == nullptr) {
                first = h + 1;
            } else {
                tc->lists[idx].push_back(h + 1);
                tc->bytes += classBytes;
            }
        }
    }
    if (carved > 1)
        counters().cachedBytes.add(
            static_cast<int64_t>((carved - 1) * classBytes));
    return first;
}

} // namespace

// ------------------------------------------------------------ MemoryPool

bool
MemoryPool::enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
MemoryPool::setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

size_t
MemoryPool::sizeClassBytes(size_t bytes)
{
    if (bytes > kMaxClassBytes)
        return (bytes + kAlignment - 1) & ~(kAlignment - 1);
    return classBytesOf(classIndexFor(bytes));
}

void *
MemoryPool::acquire(size_t bytes, bool zero)
{
    if (bytes == 0)
        return nullptr;
    Counters &ctr = counters();
    ctr.allocs.add();

    void *payload = nullptr;
    size_t classBytes;
    const bool pooled = enabled();
    if (bytes > kMaxClassBytes || !pooled) {
        // Huge or pool-off: direct block, never cached (classIdx is
        // unused on the uncacheable release path).
        classBytes = sizeClassBytes(bytes);
        payload = newDirect(kClassHuge, classBytes, /*cacheable=*/false);
    } else {
        const size_t idx = classIndexFor(bytes);
        classBytes = classBytesOf(idx);
        ThreadCache *tc = t_cacheDead ? nullptr : &threadCache();
        if (tc != nullptr && !tc->lists[idx].empty()) {
            payload = tc->lists[idx].back();
            tc->lists[idx].pop_back();
            tc->bytes -= classBytes;
            ctr.reuseHits.add();
            ctr.cachedBytes.sub(static_cast<int64_t>(classBytes));
        } else {
            Spill &s = spill();
            {
                std::lock_guard<std::mutex> lock(s.m);
                if (!s.lists[idx].empty()) {
                    payload = s.lists[idx].back();
                    s.lists[idx].pop_back();
                    s.bytes -= classBytes;
                }
            }
            if (payload != nullptr) {
                ctr.reuseHits.add();
                ctr.spillHits.add();
                ctr.cachedBytes.sub(static_cast<int64_t>(classBytes));
            } else if (classBytes <= kSlabClassMaxBytes &&
                       tc != nullptr) {
                payload = carveStrip(idx, classBytes, tc);
            } else if (classBytes <= kSlabClassMaxBytes) {
                payload = carveStrip(idx, classBytes, nullptr);
            } else {
                payload = newDirect(idx, classBytes, /*cacheable=*/true);
            }
        }
    }

    SHMT_ASSERT(isAligned(payload), "pool payload misaligned");
    if (zero || !pooled) {
        // Legacy semantics: the extent the caller asked for is zeroed
        // (class padding past it is never read).
        std::memset(payload, 0, bytes);
    } else {
        ctr.memsetsAvoided.add();
        ctr.memsetBytesAvoided.add(bytes);
#if defined(SHMT_ASAN) || !defined(NDEBUG)
        // Poison instead of skipping: an extent the caller fails to
        // overwrite surfaces as a canary in bit-identity diffs.
        uint32_t *w = static_cast<uint32_t *>(payload);
        for (size_t i = 0; i < bytes / sizeof(uint32_t); ++i)
            w[i] = kPoisonBits;
#endif
    }

    notePeakLive(ctr.bytesLive.addAndGet(static_cast<int64_t>(classBytes)));
    return payload;
}

void
MemoryPool::release(void *payload)
{
    if (payload == nullptr)
        return;
    BlockHeader *h = headerOf(payload);
    SHMT_ASSERT(h->magic == kMagic, "release of a non-pool pointer");
    const size_t classBytes = h->bytes;
    Counters &ctr = counters();
    ctr.bytesLive.sub(static_cast<int64_t>(classBytes));

    if (h->classIdx == kClassHuge || !h->cacheable) {
        freeDirect(payload);
        return;
    }
    if (!enabled() && !h->fromSlab) {
        freeDirect(payload);
        return;
    }
    ctr.cachedBytes.add(static_cast<int64_t>(classBytes));
    if (!enabled() || t_cacheDead) {
        // Pool off (slab memory still pools — it can't go back to the
        // OS) or this thread's cache is mid-teardown: spill directly.
        spillBlock(payload);
        return;
    }
    ThreadCache &tc = threadCache();
    tc.lists[h->classIdx].push_back(payload);
    tc.bytes += classBytes;
    if (tc.bytes > tc.cap)
        tc.shed();
}

MemoryStats
MemoryPool::stats()
{
    // Gauges are clamped at zero before the unsigned cast: toggling the
    // registry arm mid-lease can leave a transient negative balance in
    // the telemetry view (never in the allocator's real accounting).
    const auto gauge = [](const Gauge &g) {
        return static_cast<uint64_t>(std::max<int64_t>(0, g.value()));
    };
    Counters &c = counters();
    MemoryStats s;
    s.allocs = c.allocs.value();
    s.reuseHits = c.reuseHits.value();
    s.spillHits = c.spillHits.value();
    s.freshBytes = c.freshBytes.value();
    s.memsetsAvoided = c.memsetsAvoided.value();
    s.memsetBytesAvoided = c.memsetBytesAvoided.value();
    s.trims = c.trims.value();
    s.bytesLive = gauge(c.bytesLive);
    s.peakLive = gauge(c.peakLive);
    s.cachedBytes = gauge(c.cachedBytes);
    s.enabled = enabled();
    return s;
}

size_t
MemoryPool::threadCacheCap()
{
    return threadCache().cap;
}

void
MemoryPool::setThreadCacheCap(size_t bytes)
{
    ThreadCache &tc = threadCache();
    tc.cap = bytes;
    if (tc.bytes > tc.cap)
        tc.shed();
}

size_t
MemoryPool::threadCachedBytes()
{
    return threadCache().bytes;
}

void
MemoryPool::flushThreadCache()
{
    threadCache().flush();
}

void
MemoryPool::clearSpill()
{
    Spill &s = spill();
    std::vector<void *> drop;
    {
        std::lock_guard<std::mutex> lock(s.m);
        for (size_t idx = 0; idx < kNumClasses; ++idx) {
            auto &list = s.lists[idx];
            for (auto it = list.begin(); it != list.end();) {
                if (headerOf(*it)->fromSlab) {
                    ++it; // slab memory can't go back to the OS
                } else {
                    drop.push_back(*it);
                    s.bytes -= classBytesOf(idx);
                    it = list.erase(it);
                }
            }
        }
    }
    for (void *p : drop) {
        counters().cachedBytes.sub(
            static_cast<int64_t>(headerOf(p)->bytes));
        counters().trims.add();
        freeDirect(p);
    }
}

// ---------------------------------------------------------------- Buffer

Buffer::Buffer(size_t elems)
{
    if (elems == 0)
        return;
    ptr_ = static_cast<float *>(
        MemoryPool::acquire(elems * sizeof(float), /*zero=*/true));
    size_ = cap_ = elems;
}

Buffer
Buffer::uninitialized(size_t elems)
{
    Buffer b;
    if (elems == 0)
        return b;
    b.ptr_ = static_cast<float *>(
        MemoryPool::acquire(elems * sizeof(float), /*zero=*/false));
    b.size_ = b.cap_ = elems;
    return b;
}

void
Buffer::resizeUninit(size_t elems)
{
    if (elems > cap_) {
        MemoryPool::release(ptr_);
        ptr_ = static_cast<float *>(
            MemoryPool::acquire(elems * sizeof(float), /*zero=*/false));
        cap_ = elems;
    }
    size_ = elems;
}

void
Buffer::fill(float v)
{
    for (size_t i = 0; i < size_; ++i)
        ptr_[i] = v;
}

void
Buffer::reset()
{
    if (ptr_ != nullptr)
        MemoryPool::release(ptr_);
    ptr_ = nullptr;
    size_ = cap_ = 0;
}

} // namespace shmt::common

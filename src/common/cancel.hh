/**
 * @file
 * Cooperative deadlines and cancellation.
 *
 * A submission may carry a Deadline (absolute wall-clock cutoff) and a
 * CancelToken (client-held kill switch). Both are *cooperative*: the
 * execution stack polls them at VOp boundaries — the natural point
 * where no partial HLOP output can leak — and stops with
 * DeadlineExceeded/Cancelled instead of tearing anything down.
 * Sibling programs, the shared host pool, and the serving caches are
 * never touched by a trip.
 *
 * Both types are cheap to copy and default to "never fires": a
 * default-constructed Deadline is infinite and a default-constructed
 * CancelToken is unarmed, so the error-free path pays one null check
 * per poll and nothing else.
 */

#ifndef SHMT_COMMON_CANCEL_HH
#define SHMT_COMMON_CANCEL_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

namespace shmt::common {

class CancelSource;

/** Read side of a cancellation flag. Default = never cancelled. */
class CancelToken
{
  public:
    CancelToken() = default;

    /** Whether the owning CancelSource has fired. */
    bool
    cancelled() const
    {
        return flag_ && flag_->load(std::memory_order_acquire);
    }

    /** Whether this token is connected to a source at all. */
    bool armed() const { return flag_ != nullptr; }

  private:
    friend class CancelSource;
    explicit CancelToken(std::shared_ptr<const std::atomic<bool>> flag)
        : flag_(std::move(flag))
    {}

    std::shared_ptr<const std::atomic<bool>> flag_;
};

/** Owner of a cancellation flag; hands out tokens. */
class CancelSource
{
  public:
    CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

    /** Fire the flag; every token observes it (sticky, idempotent). */
    void cancel() { flag_->store(true, std::memory_order_release); }

    bool cancelled() const
    {
        return flag_->load(std::memory_order_acquire);
    }

    CancelToken token() const { return CancelToken(flag_); }

  private:
    std::shared_ptr<std::atomic<bool>> flag_;
};

/** Absolute wall-clock cutoff. Default = infinite (never expires). */
class Deadline
{
  public:
    using Clock = std::chrono::steady_clock;

    Deadline() = default;

    static Deadline never() { return Deadline(); }

    static Deadline
    afterMillis(int64_t ms)
    {
        Deadline d;
        d.at_ = Clock::now() + std::chrono::milliseconds(ms);
        return d;
    }

    static Deadline
    afterSeconds(double sec)
    {
        Deadline d;
        d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(sec));
        return d;
    }

    bool infinite() const { return !at_.has_value(); }

    bool expired() const { return at_ && Clock::now() >= *at_; }

  private:
    std::optional<Clock::time_point> at_;
};

} // namespace shmt::common

#endif // SHMT_COMMON_CANCEL_HH

/**
 * @file
 * Deterministic pseudo-random number generation for SHMT.
 *
 * All stochastic behaviour in the simulator (workload generation, uniform
 * random sampling, NPU noise injection) flows through SplitMix64/
 * Xoshiro256** generators seeded explicitly, so every experiment is
 * bit-reproducible across runs and platforms.
 */

#ifndef SHMT_COMMON_RANDOM_HH
#define SHMT_COMMON_RANDOM_HH

#include <cstdint>
#include <limits>

namespace shmt {

/** SplitMix64: used to seed Xoshiro and as a cheap stateless hash. */
inline uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Stateless 64-bit mix of a single value (for per-partition noise seeds). */
inline uint64_t
hashMix(uint64_t x)
{
    uint64_t s = x;
    return splitmix64(s);
}

/**
 * Xoshiro256** deterministic PRNG.
 *
 * Satisfies UniformRandomBitGenerator so it can drive <random>
 * distributions, but SHMT mostly uses the uniform helpers below to stay
 * bit-identical regardless of libstdc++ internals.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a 64-bit seed expanded through SplitMix64. */
    explicit Rng(uint64_t seed = 0x5eed5eed5eedULL)
    {
        uint64_t sm = seed;
        for (auto &word : state_)
            word = splitmix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<uint64_t>::max();
    }

    /** Next 64 raw bits. */
    uint64_t
    operator()()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
    }

    /** Uniform float in [lo, hi). */
    float
    uniform(float lo, float hi)
    {
        return lo + static_cast<float>(uniform()) * (hi - lo);
    }

    /** Uniform integer in [0, n) without modulo bias for n << 2^64. */
    uint64_t
    uniformInt(uint64_t n)
    {
        return n == 0 ? 0 : operator()() % n;
    }

    /** Standard normal via Box-Muller (deterministic, no <random>). */
    double
    normal()
    {
        if (have_spare_) {
            have_spare_ = false;
            return spare_;
        }
        double u1 = 0.0;
        while (u1 <= 1e-12)
            u1 = uniform();
        const double u2 = uniform();
        const double r = __builtin_sqrt(-2.0 * __builtin_log(u1));
        const double theta = 2.0 * 3.14159265358979323846 * u2;
        spare_ = r * __builtin_sin(theta);
        have_spare_ = true;
        return r * __builtin_cos(theta);
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4] = {};
    double spare_ = 0.0;
    bool have_spare_ = false;
};

} // namespace shmt

#endif // SHMT_COMMON_RANDOM_HH

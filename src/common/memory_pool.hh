/**
 * @file
 * Memory engine: 64-byte-aligned size-class slab allocator with
 * thread-local free-lists, a global spill arena, and an explicit
 * uninitialized allocation path.
 *
 * Every hot buffer in the serving stack — tensor payloads, reduction
 * accumulators, NPU/DSP staging planes, residency-cache entries, GEMM
 * panel scratch — is a short-lived float block of a recurring size.
 * Pre-engine each of those was a fresh `std::vector<float>`: one
 * malloc plus one redundant memset per allocation, serialized on the
 * global allocator for the parallel host engine. The pool replaces
 * that with:
 *
 *  - **Size classes.** Requests round up to the next class in
 *    {64, 96, 128, 192, 256, ...} bytes (powers of two interleaved
 *    with 1.5x, <= 50% internal fragmentation bound at 12.5% average)
 *    so blocks of recurring shapes recycle exactly.
 *  - **Thread-local free lists.** Release pushes onto the releasing
 *    thread's per-class LIFO; acquire pops from it lock-free. Each
 *    thread's idle bytes are capped (64 MiB default); overflow spills.
 *  - **Global spill arena.** A mutex-protected per-class store (256
 *    MiB cap) that absorbs thread-cache overflow and exiting threads'
 *    caches, and backstops cold thread-local misses — so buffers
 *    released on one thread can be reused from another.
 *  - **Slab carving.** Small classes (<= 4 KiB) are carved in strips
 *    from 256 KiB slabs, amortizing the lock and the allocator call;
 *    slab memory is recycled through the free lists forever and never
 *    returned to the OS (bounded by the small-block high-water mark).
 *  - **Uninitialized allocation.** `Buffer::uninitialized` skips the
 *    zero-fill entirely when the pool is enabled; callers must
 *    provably overwrite the full extent. Under `SHMT_ASAN` builds the
 *    skipped memset becomes a canary *poison* fill instead, so an
 *    incomplete overwrite shows up as a bit-exact diff (and tests
 *    assert no canary survives).
 *  - **Alignment.** Every block's payload is 64-byte aligned (cache
 *    line / widest vector), which is what lets `simd::VecF` dispatch
 *    to aligned load/store in the row primitives.
 *
 * `MemoryPool::setEnabled(false)` restores legacy semantics process-
 * wide: every allocation is a fresh aligned block, zero-filled even on
 * the uninitialized path, freed on release. Runs with the pool off
 * are the bit-identity reference for runs with it on.
 *
 * Thread-safety: all entry points are safe from any thread. Stats are
 * process-global monotone counters plus gauges; consumers snapshot
 * before/after a region and report `MemoryStats::delta`.
 */

#ifndef SHMT_COMMON_MEMORY_POOL_HH
#define SHMT_COMMON_MEMORY_POOL_HH

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace shmt::common {

/** Process-global memory-engine counters (see MemoryPool::stats()).
 *  Monotone counters unless marked gauge. */
struct MemoryStats
{
    uint64_t allocs = 0;        //!< blocks leased to callers
    uint64_t reuseHits = 0;     //!< leases served from a free list
    uint64_t spillHits = 0;     //!<   ... of which from the spill arena
    uint64_t freshBytes = 0;    //!< bytes newly obtained from the OS
    uint64_t memsetsAvoided = 0; //!< uninitialized leases that skipped
                                 //!< the legacy zero-fill
    uint64_t memsetBytesAvoided = 0; //!< bytes those leases skipped
    uint64_t trims = 0;         //!< cached blocks dropped by byte caps
    uint64_t bytesLive = 0;     //!< gauge: bytes currently leased
    uint64_t peakLive = 0;      //!< high-water mark of bytesLive
    uint64_t cachedBytes = 0;   //!< gauge: idle bytes (thread + spill)
    bool enabled = false;       //!< pool mode at snapshot time

    /** Per-region view: monotone counters subtract; gauges, peak and
     *  the mode flag carry the @p end snapshot. */
    static MemoryStats
    delta(const MemoryStats &begin, const MemoryStats &end)
    {
        MemoryStats d = end;
        d.allocs -= begin.allocs;
        d.reuseHits -= begin.reuseHits;
        d.spillHits -= begin.spillHits;
        d.freshBytes -= begin.freshBytes;
        d.memsetsAvoided -= begin.memsetsAvoided;
        d.memsetBytesAvoided -= begin.memsetBytesAvoided;
        d.trims -= begin.trims;
        return d;
    }
};

/**
 * Owning handle to one pool block, viewed as a float array.
 *
 * Move-only, vector-like surface: size() in floats, capacity() is the
 * grow-without-realloc high-water for the current block. Growing past
 * capacity swaps the block (contents are NOT preserved — every user
 * is an overwrite-everything staging pass; see resizeUninit()).
 * data() is 64-byte aligned whenever non-null.
 */
class Buffer
{
  public:
    Buffer() = default;

    /** Allocate @p elems floats, zero-filled (legacy semantics). */
    explicit Buffer(size_t elems);

    /**
     * Allocate @p elems floats without the zero-fill (pool enabled;
     * canary-poisoned under SHMT_ASAN). The caller must overwrite the
     * full extent before any bytes are read — with the pool disabled
     * this falls back to a zero-fill, so an off-vs-on bit-exact diff
     * checks exactly that claim.
     */
    static Buffer uninitialized(size_t elems);

    Buffer(Buffer &&other) noexcept
        : ptr_(other.ptr_), size_(other.size_), cap_(other.cap_)
    {
        other.ptr_ = nullptr;
        other.size_ = other.cap_ = 0;
    }
    Buffer &
    operator=(Buffer &&other) noexcept
    {
        if (this != &other) {
            reset();
            ptr_ = other.ptr_;
            size_ = other.size_;
            cap_ = other.cap_;
            other.ptr_ = nullptr;
            other.size_ = other.cap_ = 0;
        }
        return *this;
    }
    Buffer(const Buffer &) = delete;
    Buffer &operator=(const Buffer &) = delete;
    ~Buffer() { reset(); }

    float *data() { return ptr_; }
    const float *data() const { return ptr_; }
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    /** Floats this block holds without reallocating. */
    size_t capacity() const { return cap_; }

    float &operator[](size_t i) { return ptr_[i]; }
    const float &operator[](size_t i) const { return ptr_[i]; }

    float *begin() { return ptr_; }
    float *end() { return ptr_ + size_; }
    const float *begin() const { return ptr_; }
    const float *end() const { return ptr_ + size_; }

    /**
     * Resize to @p elems floats with UNINITIALIZED contents: growing
     * past capacity() swaps in a new block and does NOT preserve the
     * old contents; shrinking keeps the block (capacity unchanged).
     */
    void resizeUninit(size_t elems);

    /** Set every element (size() extent) to @p v. */
    void fill(float v);

    /** Vector-style: resize to @p elems, all set to @p v. */
    void
    assign(size_t elems, float v)
    {
        resizeUninit(elems);
        fill(v);
    }

    /** Release the block back to the pool; becomes empty. */
    void reset();

  private:
    friend class MemoryPool;

    float *ptr_ = nullptr;
    size_t size_ = 0; //!< elements
    size_t cap_ = 0;  //!< elements the block can hold for this handle
};

/** The process-wide slab allocator behind Buffer (static-only). */
class MemoryPool
{
  public:
    /** Payload alignment of every block. */
    static constexpr size_t kAlignment = 64;
    /** Default cap on idle bytes cached per thread. */
    static constexpr size_t kDefaultThreadCacheBytes =
        size_t{64} * 1024 * 1024;
    /** Default cap on idle bytes in the global spill arena. */
    static constexpr size_t kDefaultSpillCapBytes =
        size_t{256} * 1024 * 1024;
    /** Canary float written by poisoned uninitialized allocations
     *  (SHMT_ASAN builds): bit pattern 0xCDCDCDCD, a quiet-ish NaN
     *  payload that no kernel ever produces. */
    static constexpr uint32_t kPoisonBits = 0xCDCDCDCDu;

    /**
     * Pool mode (process-global, default on). Off = legacy behavior:
     * fresh zero-filled aligned allocations, nothing recycled. Flipped
     * by tools/tests from `--mem-pool off|on`; existing blocks remain
     * valid across a flip and release correctly.
     */
    static bool enabled();
    static void setEnabled(bool on);

    /** Snapshot the process-global counters. */
    static MemoryStats stats();

    /** Size class (in bytes) a request of @p bytes is served from. */
    static size_t sizeClassBytes(size_t bytes);

    /** True when @p p satisfies the pool's alignment contract. */
    static bool
    isAligned(const void *p)
    {
        return (reinterpret_cast<uintptr_t>(p) & (kAlignment - 1)) == 0;
    }

    /** This thread's cap on idle cached bytes. */
    static size_t threadCacheCap();
    /** Set this thread's cap; trims immediately if exceeded. */
    static void setThreadCacheCap(size_t bytes);
    /** Idle bytes cached on this thread. */
    static size_t threadCachedBytes();
    /** Flush this thread's free lists into the spill arena. */
    static void flushThreadCache();
    /** Drop the spill arena's idle blocks (frees what the OS can
     *  take back; slab-carved blocks stay pooled). */
    static void clearSpill();

  private:
    friend class Buffer;

    /** Lease a payload of at least @p bytes; @p zero selects the
     *  legacy zero-fill, otherwise the uninitialized path. */
    static void *acquire(size_t bytes, bool zero);
    /** Return a payload pointer obtained from acquire(). */
    static void release(void *payload);
};

} // namespace shmt::common

#endif // SHMT_COMMON_MEMORY_POOL_HH

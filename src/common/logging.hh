/**
 * @file
 * Status-message and error-handling helpers in the gem5 spirit.
 *
 * panic()  -- an internal invariant of SHMT itself was violated; aborts.
 * fatal()  -- the user asked for something impossible; exits with code 1.
 * warn()   -- something works, but not as well as it should.
 * inform() -- plain status output.
 */

#ifndef SHMT_COMMON_LOGGING_HH
#define SHMT_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>

namespace shmt {

/** Verbosity levels for runtime status messages. */
enum class LogLevel {
    Silent = 0,
    Warn = 1,
    Inform = 2,
    Debug = 3,
};

/** Get the global log level (default Warn; see setLogLevel()). */
LogLevel logLevel();

/** Set the global log level for inform()/warn()/debugLog(). */
void setLogLevel(LogLevel level);

namespace detail {

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    ((os << std::forward<Args>(args)), ...);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

} // namespace detail

/**
 * Abort with a message: something that should never happen happened.
 * Use for SHMT bugs, not user errors.
 */
#define SHMT_PANIC(...)                                                       \
    ::shmt::detail::panicImpl(__FILE__, __LINE__,                             \
                              ::shmt::detail::concat(__VA_ARGS__))

/**
 * Exit with a message: the simulation cannot continue due to a condition
 * that is the user's fault (bad configuration, invalid arguments).
 */
#define SHMT_FATAL(...)                                                       \
    ::shmt::detail::fatalImpl(__FILE__, __LINE__,                             \
                              ::shmt::detail::concat(__VA_ARGS__))

/** Assert an internal invariant; panics with the condition text on failure. */
#define SHMT_ASSERT(cond, ...)                                                \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::shmt::detail::panicImpl(                                        \
                __FILE__, __LINE__,                                           \
                ::shmt::detail::concat("assertion failed: " #cond " ",        \
                                       ##__VA_ARGS__));                       \
        }                                                                     \
    } while (0)

/** Warn the user that some behaviour may be off. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Informative status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() >= LogLevel::Inform)
        detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Debug-level trace message. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    if (logLevel() >= LogLevel::Debug)
        detail::debugImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace shmt

#endif // SHMT_COMMON_LOGGING_HH

#include "backend.hh"

#include "tensor/quantize.hh"

namespace shmt::devices {

using kernels::KernelArgs;
using kernels::KernelInfo;

namespace {

/** Exact-FP32 backend shared by the simulated GPU and the host CPU. */
class ExactBackend : public Backend
{
  public:
    ExactBackend(sim::DeviceKind kind, std::string name)
        : kind_(kind), name_(std::move(name))
    {}

    sim::DeviceKind kind() const override { return kind_; }
    std::string_view name() const override { return name_; }
    DType nativeDtype() const override { return DType::Float32; }

    bool
    supports(const KernelInfo &) const override
    {
        // The GPU/CPU HLOP library covers every registered opcode
        // (paper: GPU implementations exist for all ten workloads).
        return true;
    }

    common::Status
    execute(const KernelInfo &info, const KernelArgs &args,
            const Rect &region, TensorView out, uint64_t) const override
    {
        info.body(args.hostSimd)(args, region, out);
        return {};
    }

    size_t
    stagingBytesPerElement() const override
    {
        // The CPU computes in place on shared memory; the GPU stages
        // FP32 working copies.
        return kind_ == sim::DeviceKind::Cpu
                   ? 0
                   : dtypeSize(DType::Float32);
    }

  private:
    sim::DeviceKind kind_;
    std::string name_;
};

/** INT8 NPU backend standing in for the Edge TPU. */
class TpuBackend : public Backend
{
  public:
    TpuBackend(const kernels::KernelRegistry &registry,
               const sim::PlatformCalibration &cal, double qat_factor)
        : executor_(registry, cal, qat_factor)
    {}

    sim::DeviceKind kind() const override { return sim::DeviceKind::EdgeTpu; }
    std::string_view name() const override { return "edgetpu0"; }
    DType nativeDtype() const override { return DType::Int8; }

    bool
    supports(const KernelInfo &info) const override
    {
        // Every opcode with an NPU model; accumulating reductions with
        // Max/Min combine run fine too (counts stay in FP on the host).
        (void)info;
        return true;
    }

    common::Status
    execute(const KernelInfo &info, const KernelArgs &args,
            const Rect &region, TensorView out, uint64_t seed) const override
    {
        executor_.run(info, args, region, out, seed);
        return {};
    }

    size_t
    stagingBytesPerElement() const override
    {
        // INT8 staging both ways (quantization happens host-side).
        return dtypeSize(DType::Int8);
    }

  private:
    npu::NpuExecutor executor_;
};

/**
 * Image-DSP backend (paper §2.1's extension sketch): a 16-bit
 * fixed/half-precision stencil engine in the style of the Pixel
 * Visual Core. It only implements tile-model image operations that
 * have a DSP calibration ratio; everything else is unsupported and
 * the runtime must not queue it here.
 */
class DspBackend : public Backend
{
  public:
    explicit DspBackend(const sim::PlatformCalibration &cal) : cal_(cal)
    {}

    sim::DeviceKind kind() const override { return sim::DeviceKind::Dsp; }
    std::string_view name() const override { return "dsp0"; }
    DType nativeDtype() const override { return DType::Float16; }

    bool
    supports(const KernelInfo &info) const override
    {
        if (info.model != ParallelModel::Tile ||
            info.reduce != kernels::ReduceKind::None)
            return false;
        const sim::KernelCalibration *rec = cal_.find(info.costKey);
        return rec && rec->dspRatio > 0.0;
    }

    common::Status
    execute(const KernelInfo &info, const KernelArgs &args,
            const Rect &region, TensorView out, uint64_t) const override
    {
        if (!supports(info))
            return common::Status::invalidArgument(
                "DSP cannot execute '" + std::string(info.opcode) + "'");
        // Stage FP16 copies of the input region (plus halo) and run
        // the kernel on them; round the output to FP16 as well.
        const auto &first = args.input(0);
        const size_t halo = info.halo;
        const size_t er0 = region.row0 >= halo ? region.row0 - halo : 0;
        const size_t ec0 = region.col0 >= halo ? region.col0 - halo : 0;
        const size_t er1 =
            std::min(first.rows(), region.row0 + region.rows + halo);
        const size_t ec1 =
            std::min(first.cols(), region.col0 + region.cols + halo);

        std::vector<Tensor> scratch;
        scratch.reserve(args.inputs.size());
        // Resident FP16 planes borrowed from the residency cache; the
        // handles pin the buffers for the duration of this HLOP.
        std::vector<kernels::ResidencyService::Handle> resident;
        KernelArgs staged;
        staged.scalars = args.scalars;
        staged.hostSimd = args.hostSimd;
        for (size_t i = 0; i < args.inputs.size(); ++i) {
            const auto &in = args.inputs[i];
            const auto src = in.slice(er0, ec0, er1 - er0, ec1 - ec0);
            const kernels::InputIdentity ident = args.inputId(i);
            if (args.residency && ident.tracked()) {
                // FP16 rounding is parameter-free: the staged bytes
                // are a pure function of (source bytes, rectangle,
                // simd pass), all covered by the key.
                kernels::ResidencyService::Key key;
                key.id = ident.id;
                key.generation = ident.generation;
                key.repr = kernels::ResidencyService::Repr::DspFp16;
                key.simd = args.hostSimd;
                key.region = Rect{er0, ec0, er1 - er0, ec1 - ec0};
                auto handle = args.residency->lease(key, [&] {
                    kernels::ResidencyService::Entry e;
                    e.rows = er1 - er0;
                    e.cols = ec1 - ec0;
                    e.data.resizeUninit(e.rows * e.cols);
                    fakeQuantizeFp16(src,
                                     TensorView(e.data.data(), e.rows,
                                                e.cols, e.cols),
                                     args.hostSimd);
                    return e;
                });
                staged.inputs.push_back(
                    ConstTensorView(handle->data.data(), handle->rows,
                                    handle->cols, handle->cols));
                resident.push_back(std::move(handle));
                continue;
            }
            // The FP16 pass overwrites the whole plane — no zero-fill.
            Tensor s = Tensor::uninitialized(er1 - er0, ec1 - ec0);
            fakeQuantizeFp16(src, s.view(), args.hostSimd);
            staged.inputs.push_back(s.view());
            scratch.push_back(std::move(s));
        }

        const Rect adj{region.row0 - er0, region.col0 - ec0, region.rows,
                       region.cols};
        info.body(args.hostSimd)(staged, adj, out);
        fakeQuantizeFp16(ConstTensorView(out), out, args.hostSimd);
        return {};
    }

    size_t
    stagingBytesPerElement() const override
    {
        return dtypeSize(DType::Float16);
    }

  private:
    const sim::PlatformCalibration &cal_;
};

} // namespace

std::unique_ptr<Backend>
makeDspBackend(const sim::PlatformCalibration &cal)
{
    return std::make_unique<DspBackend>(cal);
}

std::unique_ptr<Backend>
makeGpuBackend(const kernels::KernelRegistry &)
{
    return std::make_unique<ExactBackend>(sim::DeviceKind::Gpu, "gpu0");
}

std::unique_ptr<Backend>
makeCpuBackend(const kernels::KernelRegistry &)
{
    return std::make_unique<ExactBackend>(sim::DeviceKind::Cpu, "cpu0");
}

std::unique_ptr<Backend>
makeTpuBackend(const kernels::KernelRegistry &registry,
               const sim::PlatformCalibration &cal, double qat_factor)
{
    return std::make_unique<TpuBackend>(registry, cal, qat_factor);
}

std::vector<std::unique_ptr<Backend>>
makePrototypeBackends(const kernels::KernelRegistry &registry,
                      const sim::PlatformCalibration &cal,
                      bool include_cpu, bool include_dsp)
{
    std::vector<std::unique_ptr<Backend>> out;
    out.push_back(makeGpuBackend(registry));
    out.push_back(makeTpuBackend(registry, cal));
    if (include_cpu)
        out.push_back(makeCpuBackend(registry));
    if (include_dsp)
        out.push_back(makeDspBackend(cal));
    return out;
}

} // namespace shmt::devices

#include "fault_injection.hh"

#include <cstdlib>

#include "common/random.hh"

namespace shmt::devices {

namespace {

/** Decorator failing a deterministic fraction of executions. */
class FaultInjectingBackend : public Backend
{
  public:
    FaultInjectingBackend(std::unique_ptr<Backend> inner, double rate,
                          uint64_t salt)
        : inner_(std::move(inner)), rate_(rate), salt_(salt)
    {}

    sim::DeviceKind kind() const override { return inner_->kind(); }
    std::string_view name() const override { return inner_->name(); }
    DType nativeDtype() const override { return inner_->nativeDtype(); }

    bool
    supports(const kernels::KernelInfo &info) const override
    {
        return inner_->supports(info);
    }

    common::Status
    execute(const kernels::KernelInfo &info,
            const kernels::KernelArgs &args, const Rect &region,
            TensorView out, uint64_t seed) const override
    {
        if (shouldFault(region, seed))
            return common::Status::backendFailure(
                "injected fault on " + std::string(name()) + " ('" +
                info.opcode + "')");
        return inner_->execute(info, args, region, out, seed);
    }

    size_t
    stagingBytesPerElement() const override
    {
        return inner_->stagingBytesPerElement();
    }

  private:
    /**
     * Deterministic per-HLOP fault decision: a pure hash of the device
     * salt, the run seed and the HLOP's region. Re-dispatch of the
     * same region to a *different* device (different salt) rolls an
     * independent decision, and repeating a run reproduces the exact
     * fault set.
     */
    bool
    shouldFault(const Rect &region, uint64_t seed) const
    {
        if (rate_ <= 0.0)
            return false;
        if (rate_ >= 1.0)
            return true;
        uint64_t h = hashMix(salt_ ^ 0xFA01'7B0CULL);
        h = hashMix(h ^ seed);
        h = hashMix(h ^ (uint64_t(region.row0) << 32 | region.col0));
        h = hashMix(h ^ (uint64_t(region.rows) << 32 | region.cols));
        const double u = double(h >> 11) * 0x1.0p-53;
        return u < rate_;
    }

    std::unique_ptr<Backend> inner_;
    double rate_;
    uint64_t salt_;
};

/** Whether @p clause names @p bk (exact name or kind alias). */
bool
matches(const std::string &clause, const Backend &bk)
{
    if (clause == bk.name())
        return true;
    switch (bk.kind()) {
      case sim::DeviceKind::Gpu:
        return clause == "gpu";
      case sim::DeviceKind::EdgeTpu:
        return clause == "tpu" || clause == "npu" || clause == "edgetpu";
      case sim::DeviceKind::Cpu:
        return clause == "cpu";
      case sim::DeviceKind::Dsp:
        return clause == "dsp";
    }
    return false;
}

} // namespace

common::StatusOr<std::vector<FaultSpec>>
parseFaultSpecs(std::string_view spec)
{
    std::vector<FaultSpec> out;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string_view::npos)
            comma = spec.size();
        const std::string_view clause = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (clause.empty())
            continue;
        const size_t colon = clause.rfind(':');
        if (colon == std::string_view::npos || colon == 0 ||
            colon + 1 >= clause.size())
            return common::Status::invalidArgument(
                "fault spec clause '" + std::string(clause) +
                "' is not <backend:rate>");
        FaultSpec fs;
        fs.backend = std::string(clause.substr(0, colon));
        const std::string rate_str(clause.substr(colon + 1));
        char *end = nullptr;
        fs.rate = std::strtod(rate_str.c_str(), &end);
        if (end == rate_str.c_str() || *end != '\0' || fs.rate < 0.0 ||
            fs.rate > 1.0)
            return common::Status::invalidArgument(
                "fault rate '" + rate_str + "' must be in [0, 1]");
        out.push_back(std::move(fs));
    }
    return out;
}

std::unique_ptr<Backend>
makeFaultInjectingBackend(std::unique_ptr<Backend> inner, double rate,
                          uint64_t salt)
{
    return std::make_unique<FaultInjectingBackend>(std::move(inner),
                                                   rate, salt);
}

common::Status
injectFaults(std::vector<std::unique_ptr<Backend>> &backends,
             const std::vector<FaultSpec> &specs)
{
    for (const FaultSpec &fs : specs) {
        bool matched = false;
        for (size_t i = 0; i < backends.size(); ++i) {
            if (!matches(fs.backend, *backends[i]))
                continue;
            matched = true;
            // Salt by device index so two wrapped devices make
            // independent fault decisions for the same region.
            backends[i] = makeFaultInjectingBackend(
                std::move(backends[i]), fs.rate, i + 1);
        }
        if (!matched)
            return common::Status::invalidArgument(
                "fault spec backend '" + fs.backend +
                "' matches no device");
    }
    return {};
}

} // namespace shmt::devices

/**
 * @file
 * Configurable fail-stop fault injection for device backends.
 *
 * A FaultInjectingBackend wraps a real Backend and makes a
 * deterministic per-HLOP decision to fail instead of executing
 * (`shmtbench --inject-faults=<backend:rate>[,...]`). The decision is
 * a pure hash of (salt, seed, region), so a given run configuration
 * always faults the same HLOPs — recovery tests are reproducible and
 * the no-fault reference for a recovered run is well defined.
 *
 * The failure model is fail-stop: a faulting execute() writes nothing
 * into the output view and returns BackendFailure, so the runtime can
 * re-dispatch the exact same region to another eligible device without
 * any cleanup.
 */

#ifndef SHMT_DEVICES_FAULT_INJECTION_HH
#define SHMT_DEVICES_FAULT_INJECTION_HH

#include <memory>
#include <string>
#include <vector>

#include "common/status.hh"
#include "devices/backend.hh"

namespace shmt::devices {

/** One `backend:rate` clause of an --inject-faults spec. */
struct FaultSpec
{
    /**
     * Which backend to wrap: an exact device name ("gpu0", "edgetpu0",
     * "cpu0", "dsp0") or a kind alias ("gpu", "tpu" / "npu" /
     * "edgetpu", "cpu", "dsp") matching every device of that kind.
     */
    std::string backend;
    /** Probability in [0, 1] that one HLOP execution faults. */
    double rate = 0.0;
};

/**
 * Parse a comma-separated "<backend:rate>[,...]" spec. Returns
 * InvalidArgument on malformed clauses or rates outside [0, 1].
 */
common::StatusOr<std::vector<FaultSpec>>
parseFaultSpecs(std::string_view spec);

/**
 * Wrap an already-constructed backend so a deterministic @p rate
 * fraction of its HLOP executions fail with BackendFailure before
 * touching the output. @p salt decorrelates multiple wrapped devices.
 */
std::unique_ptr<Backend>
makeFaultInjectingBackend(std::unique_ptr<Backend> inner, double rate,
                          uint64_t salt = 0);

/**
 * Apply @p specs to a device set in place, wrapping each matching
 * backend. Returns InvalidArgument when a clause matches no device.
 */
common::Status
injectFaults(std::vector<std::unique_ptr<Backend>> &backends,
             const std::vector<FaultSpec> &specs);

} // namespace shmt::devices

#endif // SHMT_DEVICES_FAULT_INJECTION_HH

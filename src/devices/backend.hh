/**
 * @file
 * Device backends.
 *
 * A Backend is what a hardware driver registers with the SHMT runtime
 * at initialization (paper §3.3: "each hardware resource's driver is
 * responsible for providing SHMT with its list of available HLOP
 * operations and their implementations"). A backend knows:
 *
 *  - which HLOPs it supports,
 *  - how to execute one HLOP functionally (producing real numbers,
 *    at the device's native precision),
 *  - how many bytes an HLOP moves across the interconnect,
 *  - its native data type (which bounds the accuracy QAWS can expect).
 */

#ifndef SHMT_DEVICES_BACKEND_HH
#define SHMT_DEVICES_BACKEND_HH

#include <memory>
#include <string_view>
#include <vector>

#include "common/status.hh"
#include "kernels/kernel_registry.hh"
#include "npu/npu_model.hh"
#include "sim/calibration.hh"
#include "tensor/dtype.hh"

namespace shmt::devices {

/** One processing unit visible to the SHMT runtime. */
class Backend
{
  public:
    virtual ~Backend() = default;

    /** Which physical device kind this is (for the cost/power model). */
    virtual sim::DeviceKind kind() const = 0;

    /** Human-readable device name. */
    virtual std::string_view name() const = 0;

    /** Native computation precision. */
    virtual DType nativeDtype() const = 0;

    /** Whether this device has an implementation of @p info. */
    virtual bool supports(const kernels::KernelInfo &info) const = 0;

    /**
     * Execute one HLOP: compute @p region of @p info's kernel from
     * @p args into @p out, at this device's precision. @p seed makes
     * stochastic approximation (NPU models) deterministic.
     *
     * Fallible: a non-OK Status means the device could not run the
     * HLOP (unsupported opcode, injected hardware fault). The failure
     * contract is fail-stop — on error the backend has written nothing
     * into @p out, so the runtime may re-dispatch the same region to
     * another eligible device.
     */
    virtual common::Status execute(const kernels::KernelInfo &info,
                                   const kernels::KernelArgs &args,
                                   const Rect &region, TensorView out,
                                   uint64_t seed) const = 0;

    /**
     * Bytes per element this device stages across the interconnect
     * (FP32 for the GPU, INT8 for the Edge TPU, 0 for the CPU which
     * computes in place on shared memory). The runtime derives the
     * per-HLOP in/out transfer volumes from this.
     */
    virtual size_t stagingBytesPerElement() const = 0;
};

/**
 * Construct the paper's prototype device set: a Maxwell-class GPU
 * backend and an Edge TPU backend, plus optionally the host CPU and
 * the image-DSP extension.
 */
std::vector<std::unique_ptr<Backend>>
makePrototypeBackends(const kernels::KernelRegistry &registry,
                      const sim::PlatformCalibration &cal,
                      bool include_cpu = false,
                      bool include_dsp = false);

/** FP32 backend running kernel bodies exactly (simulated GPU). */
std::unique_ptr<Backend>
makeGpuBackend(const kernels::KernelRegistry &registry);

/** INT8 NPU backend (simulated Edge TPU). */
std::unique_ptr<Backend>
makeTpuBackend(const kernels::KernelRegistry &registry,
               const sim::PlatformCalibration &cal,
               double qat_factor = 1.0);

/** Host CPU backend (exact FP32, slow). */
std::unique_ptr<Backend>
makeCpuBackend(const kernels::KernelRegistry &registry);

/**
 * FP16 image-DSP backend (paper §2.1's DSP extension): supports only
 * tile-model image kernels with a DSP calibration ratio.
 */
std::unique_ptr<Backend>
makeDspBackend(const sim::PlatformCalibration &cal);

} // namespace shmt::devices

#endif // SHMT_DEVICES_BACKEND_HH

#include "benchmarks.hh"

#include <cmath>

#include "common/logging.hh"
#include "kernels/kernel_registry.hh"
#include "kernels/workload.hh"

namespace shmt::apps {

using core::VOp;

namespace {

using kernels::makeField;
using kernels::makeImage;
using kernels::makePower;
using kernels::makeSpeckleImage;
using kernels::makeSpotPrices;
using kernels::makeStrikes;
using kernels::makeTemperature;

/**
 * Output allocation for a VOp of @p opcode. Deliberately NOT
 * `Tensor::uninitialized`, even for map-style kernels whose partitions
 * cover the whole output: timing-only runs never execute the writes,
 * yet their pre-write bytes are observable — pipeline_snapshot hashes
 * the program output, and downstream VOps' sampling and
 * quantization-range scans read intermediate inputs that were never
 * produced, feeding content-dependent simulated charges. Both must
 * match the legacy zero-filled allocator bit for bit (`--mem-pool
 * off|on` snapshots diff empty), so program tensors keep the zero
 * fill; the uninitialized path is reserved for buffers the runtime
 * itself provably overwrites before any read (staging planes,
 * residency entries, dequantize targets, GEMM pack scratch).
 */
Tensor
outputTensor(std::string_view /*opcode*/, size_t rows, size_t cols)
{
    return Tensor(rows, cols);
}

/** Single-VOP benchmark over an image-like input. */
class SingleVopBenchmark : public Benchmark
{
  public:
    SingleVopBenchmark(std::string name, std::string opcode, Tensor input,
                       bool image_like, std::vector<float> scalars = {})
        : Benchmark(std::move(name), image_like)
    {
        Tensor &in = store(std::move(input));
        Tensor &out = store(Tensor(in.rows(), in.cols()));
        VOp vop;
        vop.opcode = std::move(opcode);
        vop.inputs = {&in};
        vop.output = &out;
        vop.scalars = std::move(scalars);
        program_.name = name_;
        program_.ops.push_back(std::move(vop));
        output_ = &out;
    }
};

/** Blackscholes as a chain of primitive vector VOPs (see header). */
class BlackscholesBenchmark : public Benchmark
{
  public:
    BlackscholesBenchmark(size_t rows, size_t cols, uint64_t seed)
        : Benchmark("blackscholes", false)
    {
        constexpr float r = 0.02f;
        constexpr float sigma = 0.30f;
        constexpr float t = 1.0f;
        const float vol_sqrt_t = sigma * std::sqrt(t);
        const float drift = (r + 0.5f * sigma * sigma) * t;
        const float discount = std::exp(-r * t);

        Tensor &spot = store(makeSpotPrices(rows, cols, seed));
        Tensor &strike = store(makeStrikes(spot, seed));
        Tensor &ratio = store(outputTensor("divide", rows, cols));
        Tensor &log_ratio = store(outputTensor("log", rows, cols));
        Tensor &d1 = store(outputTensor("axpb", rows, cols));
        Tensor &d2 = store(outputTensor("axpb", rows, cols));
        Tensor &n1 = store(outputTensor("ncdf", rows, cols));
        Tensor &n2 = store(outputTensor("ncdf", rows, cols));
        Tensor &s_term = store(outputTensor("multiply", rows, cols));
        Tensor &k_term = store(outputTensor("multiply", rows, cols));
        Tensor &k_disc = store(outputTensor("axpb", rows, cols));
        Tensor &call = store(Tensor(rows, cols));

        program_.name = name_;
        auto link = [this](std::string opcode,
                           std::vector<const Tensor *> inputs, Tensor *out,
                           double weight, std::vector<float> scalars = {}) {
            VOp vop;
            vop.opcode = std::move(opcode);
            vop.inputs = std::move(inputs);
            vop.output = out;
            vop.scalars = std::move(scalars);
            vop.weight = weight;
            vop.costKeyOverride = "blackscholes";
            program_.ops.push_back(std::move(vop));
        };

        link("divide", {&spot, &strike}, &ratio, 0.10);
        link("log", {&ratio}, &log_ratio, 0.15);
        link("axpb", {&log_ratio}, &d1, 0.10,
             {1.0f / vol_sqrt_t, drift / vol_sqrt_t});
        link("axpb", {&d1}, &d2, 0.05, {1.0f, -vol_sqrt_t});
        link("ncdf", {&d1}, &n1, 0.15);
        link("ncdf", {&d2}, &n2, 0.15);
        link("multiply", {&spot, &n1}, &s_term, 0.10);
        link("multiply", {&strike, &n2}, &k_term, 0.10);
        link("axpb", {&k_term}, &k_disc, 0.05, {discount, 0.0f});
        link("sub", {&s_term, &k_disc}, &call, 0.05);
        output_ = &call;
    }
};

/** Histogram via the reduce_hist256 body, billed to "histogram". */
class HistogramBenchmark : public Benchmark
{
  public:
    HistogramBenchmark(size_t rows, size_t cols, uint64_t seed)
        : Benchmark("histogram", false)
    {
        Tensor &in = store(makeField(rows, cols, seed));
        // histogram is a reduction: outputTensor keeps the zero fill.
        Tensor &bins = store(outputTensor("histogram", 1, 256));
        auto [lo, hi] = ConstTensorView(in.view()).minmax();
        VOp vop;
        vop.opcode = "histogram";
        vop.inputs = {&in};
        vop.output = &bins;
        vop.scalars = {lo, std::nextafter(hi, hi + 1.0f)};
        program_.name = name_;
        program_.ops.push_back(std::move(vop));
        output_ = &bins;
    }
};

/** Hotspot: four chained thermal-simulation steps. */
class HotspotBenchmark : public Benchmark
{
  public:
    HotspotBenchmark(size_t rows, size_t cols, uint64_t seed)
        : Benchmark("hotspot", false)
    {
        constexpr size_t kSteps = 4;
        Tensor &power = store(makePower(rows, cols, seed));
        const Tensor *temp = &store(makeTemperature(rows, cols, seed));
        // Rodinia-flavoured coefficients scaled to our field.
        const std::vector<float> scalars = {0.002f, 0.5f, 0.5f, 0.02f,
                                            293.0f};

        program_.name = name_;
        for (size_t s = 0; s < kSteps; ++s) {
            Tensor &next = store(outputTensor("hotspot", rows, cols));
            VOp vop;
            vop.opcode = "hotspot";
            vop.inputs = {temp, &power};
            vop.output = &next;
            vop.scalars = scalars;
            vop.weight = 1.0 / static_cast<double>(kSteps);
            program_.ops.push_back(std::move(vop));
            temp = &next;
            output_ = &next;
        }
    }
};

/** SRAD: two diffusion updates with the ROI statistic from the input. */
class SradBenchmark : public Benchmark
{
  public:
    SradBenchmark(size_t rows, size_t cols, uint64_t seed)
        : Benchmark("srad", true)
    {
        constexpr size_t kSteps = 2;
        const Tensor *j = &store(makeSpeckleImage(rows, cols, seed));

        // q0sqr over the whole image, as Rodinia derives it per
        // iteration from the ROI.
        double sum = 0.0, sum2 = 0.0;
        for (size_t i = 0; i < j->size(); ++i) {
            sum += j->data()[i];
            sum2 += static_cast<double>(j->data()[i]) * j->data()[i];
        }
        const double n = static_cast<double>(j->size());
        const double mean = sum / n;
        const double var = sum2 / n - mean * mean;
        const float q0sqr = static_cast<float>(var / (mean * mean));

        program_.name = name_;
        for (size_t s = 0; s < kSteps; ++s) {
            Tensor &next = store(outputTensor("srad", rows, cols));
            VOp vop;
            vop.opcode = "srad";
            vop.inputs = {j};
            vop.output = &next;
            vop.scalars = {q0sqr, 0.5f};
            vop.weight = 1.0 / static_cast<double>(kSteps);
            program_.ops.push_back(std::move(vop));
            j = &next;
            output_ = &next;
        }
    }
};

} // namespace

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "blackscholes", "dct8x8", "dwt",  "fft",   "histogram",
        "hotspot",      "laplacian", "mf", "sobel", "srad",
    };
    return names;
}

std::unique_ptr<Benchmark>
makeBenchmark(std::string_view name, size_t rows, size_t cols,
              uint64_t seed)
{
    if (name == "blackscholes")
        return std::make_unique<BlackscholesBenchmark>(rows, cols, seed);
    if (name == "dct8x8")
        return std::make_unique<SingleVopBenchmark>(
            "dct8x8", "dct8x8", makeImage(rows, cols, seed), true);
    if (name == "dwt")
        return std::make_unique<SingleVopBenchmark>(
            "dwt", "dwt", makeImage(rows, cols, seed ^ 2), true);
    if (name == "fft")
        return std::make_unique<SingleVopBenchmark>(
            "fft", "fft", makeImage(rows, cols, seed ^ 3), false);
    if (name == "histogram")
        return std::make_unique<HistogramBenchmark>(rows, cols, seed ^ 4);
    if (name == "hotspot")
        return std::make_unique<HotspotBenchmark>(rows, cols, seed ^ 5);
    if (name == "laplacian")
        return std::make_unique<SingleVopBenchmark>(
            "laplacian", "laplacian", makeImage(rows, cols, seed ^ 6),
            true);
    if (name == "mf")
        return std::make_unique<SingleVopBenchmark>(
            "mf", "mf", makeImage(rows, cols, seed ^ 7), true);
    if (name == "sobel")
        return std::make_unique<SingleVopBenchmark>(
            "sobel", "sobel", makeImage(rows, cols, seed ^ 8), true);
    if (name == "srad")
        return std::make_unique<SradBenchmark>(rows, cols, seed ^ 9);
    SHMT_FATAL("unknown benchmark '", name, "'");
}

} // namespace shmt::apps

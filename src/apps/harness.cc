#include "harness.hh"

#include <cstdlib>

#include "core/pipeline.hh"
#include "devices/backend.hh"
#include "kernels/kernel_registry.hh"
#include "metrics/error_metrics.hh"

namespace shmt::apps {

core::Runtime
makePrototypeRuntime(core::RuntimeConfig config,
                     const sim::PlatformCalibration &cal)
{
    auto backends = devices::makePrototypeBackends(
        kernels::KernelRegistry::instance(), cal);
    return core::Runtime(std::move(backends), cal, config);
}

EvalResult
evaluatePolicy(core::Runtime &runtime, Benchmark &bench,
               std::string_view policy_name,
               const core::QawsParams &params, bool want_quality)
{
    EvalResult result;
    result.benchmark = bench.name();
    result.policy = std::string(policy_name);

    // Baseline timing (+ the exact FP32 reference when quality is
    // wanted; otherwise timing-only so paper-scale inputs stay cheap).
    result.baseline =
        runtime.runGpuBaseline(bench.program(), want_quality);
    result.baselineSec = result.baseline.makespanSec;
    const Tensor reference = want_quality ? bench.output() : Tensor();

    if (policy_name == "sw-pipelining") {
        result.run =
            core::runSwPipelined(runtime, bench.program(), {},
                                 want_quality);
    } else {
        auto policy = core::makePolicy(policy_name, params);
        result.run =
            runtime.run(bench.program(), *policy, want_quality);
    }
    result.shmtSec = result.run.makespanSec;
    result.speedup = result.baselineSec / result.shmtSec;

    size_t hlops = 0;
    size_t tpu_hlops = 0;
    for (const auto &d : result.run.devices) {
        hlops += d.hlops;
        if (d.kind == sim::DeviceKind::EdgeTpu)
            tpu_hlops += d.hlops;
    }
    result.tpuShare =
        hlops > 0 ? static_cast<double>(tpu_hlops) /
                        static_cast<double>(hlops)
                  : 0.0;

    if (want_quality) {
        result.mapePct =
            metrics::mape(reference.view(), bench.output().view());
        result.ssim =
            metrics::ssim(reference.view(), bench.output().view());
    }
    return result;
}

size_t
benchEdge(size_t fallback)
{
    if (const char *env = std::getenv("SHMT_BENCH_N")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<size_t>(v);
    }
    return fallback;
}

} // namespace shmt::apps

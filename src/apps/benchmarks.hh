/**
 * @file
 * The paper's ten benchmark applications (Table 2) as VOP programs.
 *
 * Each benchmark owns its input tensors, intermediates, and output,
 * and exposes the VopProgram the SHMT runtime executes. Blackscholes
 * is deliberately built as a *chain* of primitive vector VOPs — the
 * way the paper's programming model composes library calls — which is
 * what limits its SHMT speedup (every link re-partitions, re-schedules
 * and re-synchronizes); the others are single- or few-VOP programs.
 */

#ifndef SHMT_APPS_BENCHMARKS_HH
#define SHMT_APPS_BENCHMARKS_HH

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/vop.hh"
#include "tensor/tensor.hh"

namespace shmt::apps {

/** One instantiated benchmark: inputs, program, and output storage. */
class Benchmark
{
  public:
    virtual ~Benchmark() = default;

    /** Calibration-table name ("blackscholes", "dct8x8", ...). */
    const std::string &name() const { return name_; }

    /** Program to execute (writes into output()). */
    const core::VopProgram &program() const { return program_; }

    /** The benchmark's final output tensor. */
    const Tensor &output() const { return *output_; }
    Tensor &output() { return *output_; }

    /** Whether Fig. 8 reports SSIM for this benchmark (image data). */
    bool imageLike() const { return imageLike_; }

  protected:
    Benchmark(std::string name, bool image_like)
        : name_(std::move(name)), imageLike_(image_like)
    {}

    /** Allocate a stable-addressed tensor owned by this benchmark. */
    Tensor &
    store(Tensor t)
    {
        tensors_.push_back(std::move(t));
        return tensors_.back();
    }

    std::string name_;
    bool imageLike_;
    std::deque<Tensor> tensors_;  //!< deque: stable element addresses
    core::VopProgram program_;
    Tensor *output_ = nullptr;
};

/** Names of the ten paper benchmarks, in Table-2 order. */
const std::vector<std::string> &benchmarkNames();

/**
 * Instantiate benchmark @p name on a rows x cols dataset (the paper's
 * default is 8192x8192; benches default to a scaled-down size).
 */
std::unique_ptr<Benchmark> makeBenchmark(std::string_view name,
                                         size_t rows, size_t cols,
                                         uint64_t seed = 1);

} // namespace shmt::apps

#endif // SHMT_APPS_BENCHMARKS_HH

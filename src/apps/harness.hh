/**
 * @file
 * Shared evaluation harness for the figure/table benches.
 *
 * Runs a benchmark under a named policy against the GPU baseline and
 * reports speedup plus result quality (MAPE/SSIM vs the exact FP32
 * reference). Every bench binary in bench/ builds on this.
 */

#ifndef SHMT_APPS_HARNESS_HH
#define SHMT_APPS_HARNESS_HH

#include <string>

#include "apps/benchmarks.hh"
#include "core/policy.hh"
#include "core/runtime.hh"

namespace shmt::apps {

/** Outcome of one (benchmark, policy) evaluation. */
struct EvalResult
{
    std::string benchmark;
    std::string policy;
    double baselineSec = 0.0;
    double shmtSec = 0.0;
    double speedup = 0.0;
    double mapePct = 0.0;   //!< vs exact FP32 reference
    double ssim = 1.0;      //!< vs exact FP32 reference
    double tpuShare = 0.0;  //!< fraction of HLOPs run on the Edge TPU
    core::RunResult run;
    core::RunResult baseline;
};

/** Build the default two-device (GPU + Edge TPU) runtime. */
core::Runtime makePrototypeRuntime(
    core::RuntimeConfig config = {},
    const sim::PlatformCalibration &cal = sim::defaultCalibration());

/**
 * Evaluate @p policy_name ("even", "work-stealing", "qaws-ts", ...,
 * "ira", "oracle", "tpu-only", or the special "sw-pipelining") on
 * @p bench. @p want_quality controls whether MAPE/SSIM are computed
 * (requires an extra exact reference run).
 */
EvalResult evaluatePolicy(core::Runtime &runtime, Benchmark &bench,
                          std::string_view policy_name,
                          const core::QawsParams &params = {},
                          bool want_quality = true);

/**
 * Benchmark dataset edge length: `SHMT_BENCH_N` env var, else
 * @p fallback. The paper's full size is 8192; benches default to a
 * smaller edge so the whole suite reruns in minutes.
 */
size_t benchEdge(size_t fallback = 1024);

} // namespace shmt::apps

#endif // SHMT_APPS_HARNESS_HH

#include "quantize.hh"

#include <algorithm>
#include <cmath>

#include "common/math_utils.hh"
#include "common/simd.hh"
#include "common/thread_pool.hh"

namespace shmt {

namespace {

constexpr int32_t kQmin = -128;
constexpr int32_t kQmax = 127;

/**
 * Row grain for the parallel staging loops: chunks of at least ~16Ki
 * elements, so small partitions run inline and large ones split
 * across the host pool. All four staging passes are elementwise, so
 * the result is bit-identical for any split.
 */
size_t
rowGrain(size_t cols)
{
    return std::max<size_t>(1, (16 * 1024) / std::max<size_t>(1, cols));
}

} // namespace

int8_t
QuantParams::quantize(float v) const
{
    const float q = std::nearbyint(v / scale +
                                   static_cast<float>(zeroPoint));
    return static_cast<int8_t>(clamp(static_cast<int32_t>(q), kQmin, kQmax));
}

QuantParams
chooseQuantParams(float lo, float hi)
{
    // Widen the range to include zero (TFLite requirement) and avoid a
    // degenerate zero-width range.
    lo = std::min(lo, 0.0f);
    hi = std::max(hi, 0.0f);
    if (hi - lo < 1e-12f)
        hi = lo + 1e-12f;

    QuantParams qp;
    qp.scale = (hi - lo) / static_cast<float>(kQmax - kQmin);

    // Nudge the zero point so real 0.0 is exactly representable.
    const double zp_real = static_cast<double>(kQmin) - lo / qp.scale;
    qp.zeroPoint = static_cast<int32_t>(
        clamp<double>(std::nearbyint(zp_real), kQmin, kQmax));
    return qp;
}

QuantParams
chooseQuantParams(ConstTensorView src, bool simd)
{
    auto [lo, hi] = src.minmax(simd);
    return chooseQuantParams(lo, hi);
}

std::pair<float, float>
robustRange(ConstTensorView src, double lo_frac, double hi_frac)
{
    const size_t total = src.size();
    if (total == 0)
        return {0.0f, 0.0f};

    constexpr size_t kMaxSamples = 64 * 1024;
    const size_t step = std::max<size_t>(1, total / kMaxSamples);
    std::vector<float> samples;
    samples.reserve(total / step + 1);
    for (size_t i = 0; i < total; i += step)
        samples.push_back(src.at(i / src.cols(), i % src.cols()));

    const size_t n = samples.size();
    auto at_frac = [&](double f) {
        const size_t k = static_cast<size_t>(
            clamp<double>(f * static_cast<double>(n - 1), 0.0,
                          static_cast<double>(n - 1)));
        std::nth_element(samples.begin(),
                         samples.begin() + static_cast<long>(k),
                         samples.end());
        return samples[k];
    };
    const float hi = at_frac(hi_frac);
    const float lo = at_frac(lo_frac);
    return {std::min(lo, hi), std::max(lo, hi)};
}

std::vector<int8_t>
quantize(ConstTensorView src, const QuantParams &qp, bool simd)
{
    std::vector<int8_t> out(src.size());
    common::ThreadPool::forChunks(
        0, src.rows(), rowGrain(src.cols()),
        [&](size_t r0, size_t r1) {
            for (size_t r = r0; r < r1; ++r) {
                const float *p = src.row(r);
                int8_t *q = out.data() + r * src.cols();
                if (simd) {
                    simd::quantizeRow(p, q, src.cols(), qp.scale,
                                      qp.zeroPoint);
                } else {
                    for (size_t c = 0; c < src.cols(); ++c)
                        q[c] = qp.quantize(p[c]);
                }
            }
        });
    return out;
}

void
dequantize(const std::vector<int8_t> &src, const QuantParams &qp,
           TensorView dst, bool simd)
{
    SHMT_ASSERT(src.size() == dst.size(), "dequantize size mismatch");
    common::ThreadPool::forChunks(
        0, dst.rows(), rowGrain(dst.cols()),
        [&](size_t r0, size_t r1) {
            for (size_t r = r0; r < r1; ++r) {
                const int8_t *q = src.data() + r * dst.cols();
                float *p = dst.row(r);
                if (simd) {
                    simd::dequantizeRow(q, p, dst.cols(), qp.scale,
                                        qp.zeroPoint);
                } else {
                    for (size_t c = 0; c < dst.cols(); ++c)
                        p[c] = qp.dequantize(q[c]);
                }
            }
        });
}

void
fakeQuantize(ConstTensorView src, TensorView dst, const QuantParams &qp,
             bool simd)
{
    SHMT_ASSERT(src.rows() == dst.rows() && src.cols() == dst.cols(),
                "fakeQuantize shape mismatch");
    common::ThreadPool::forChunks(
        0, src.rows(), rowGrain(src.cols()),
        [&](size_t r0, size_t r1) {
            for (size_t r = r0; r < r1; ++r) {
                const float *s = src.row(r);
                float *d = dst.row(r);
                if (simd) {
                    simd::fakeQuantizeRow(s, d, src.cols(), qp.scale,
                                          qp.zeroPoint);
                } else {
                    for (size_t c = 0; c < src.cols(); ++c)
                        d[c] = qp.dequantize(qp.quantize(s[c]));
                }
            }
        });
}

float
toFloat16(float v)
{
    // Round-trip through IEEE binary16 semantics using bit manipulation.
    union { float f; uint32_t u; } in{v};
    const uint32_t sign = (in.u >> 16) & 0x8000u;
    const int32_t exp = static_cast<int32_t>((in.u >> 23) & 0xff) - 127;
    uint32_t mant = in.u & 0x7fffffu;

    uint16_t half;
    if (exp > 15) {
        half = static_cast<uint16_t>(sign | 0x7c00u);   // overflow -> inf
    } else if (exp >= -14) {
        // Normal range: round mantissa to 10 bits (round half to even).
        uint32_t m = mant;
        const uint32_t round_bit = 1u << 12;
        uint32_t h = static_cast<uint32_t>((exp + 15) << 10) | (m >> 13);
        if ((m & round_bit) && ((m & (round_bit - 1)) || (h & 1)))
            ++h;
        half = static_cast<uint16_t>(sign | h);
    } else if (exp >= -24) {
        // Subnormal half.
        mant |= 0x800000u;
        const int shift = -exp - 14 + 13;
        uint32_t h = mant >> (shift + 1);
        const uint32_t rem = mant & ((2u << shift) - 1);
        if (rem > (1u << shift) || (rem == (1u << shift) && (h & 1)))
            ++h;
        half = static_cast<uint16_t>(sign | h);
    } else {
        half = static_cast<uint16_t>(sign);             // underflow -> 0
    }

    // Expand back to float.
    const uint32_t h_sign = static_cast<uint32_t>(half & 0x8000u) << 16;
    const uint32_t h_exp = (half >> 10) & 0x1f;
    const uint32_t h_man = half & 0x3ffu;
    union { uint32_t u; float f; } out{};
    if (h_exp == 0x1f) {
        out.u = h_sign | 0x7f800000u | (h_man << 13);
    } else if (h_exp != 0) {
        out.u = h_sign | ((h_exp + 112) << 23) | (h_man << 13);
    } else if (h_man != 0) {
        // Subnormal half -> normal float.
        int e = -1;
        uint32_t m = h_man;
        do {
            ++e;
            m <<= 1;
        } while ((m & 0x400u) == 0);
        out.u = h_sign | ((113 - e) << 23) | ((m & 0x3ffu) << 13);
    } else {
        out.u = h_sign;
    }
    return out.f;
}

namespace {

/**
 * One row of FP16 round-tripping. With F16C the hardware converter is
 * used (nearest-even, identical to toFloat16 for all finite inputs —
 * they differ only on NaN, which the runtime never stages); everywhere
 * else the scalar bit-twiddle runs per element.
 */
void
fp16Row(const float *s, float *d, size_t n, bool simd)
{
    size_t c = 0;
#if defined(SHMT_SIMD_AVX2) && defined(__F16C__)
    if (simd) {
        for (; c + 8 <= n; c += 8) {
            const __m128i h = _mm256_cvtps_ph(
                _mm256_loadu_ps(s + c),
                _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
            _mm256_storeu_ps(d + c, _mm256_cvtph_ps(h));
        }
    }
#else
    (void)simd;
#endif
    for (; c < n; ++c)
        d[c] = toFloat16(s[c]);
}

} // namespace

void
fakeQuantizeFp16(ConstTensorView src, TensorView dst, bool simd)
{
    SHMT_ASSERT(src.rows() == dst.rows() && src.cols() == dst.cols(),
                "fakeQuantizeFp16 shape mismatch");
    common::ThreadPool::forChunks(
        0, src.rows(), rowGrain(src.cols()),
        [&](size_t r0, size_t r1) {
            for (size_t r = r0; r < r1; ++r)
                fp16Row(src.row(r), dst.row(r), src.cols(), simd);
        });
}

} // namespace shmt

#include "tensor.hh"

#include <algorithm>
#include <cstring>

#include "common/simd.hh"

namespace shmt {

std::pair<float, float>
TensorView::minmax() const
{
    return ConstTensorView(*this).minmax();
}

std::pair<float, float>
ConstTensorView::minmax() const
{
    if (size() == 0)
        return {0.0f, 0.0f};
    // Vectorized unconditionally: min/max folds are order-independent,
    // so the result is identical to the serial scan for any lane width.
    float lo = at(0, 0);
    float hi = lo;
    for (size_t r = 0; r < rows_; ++r)
        simd::rowMinMax(row(r), cols_, lo, hi);
    return {lo, hi};
}

void
memcpy2d(TensorView dst, ConstTensorView src)
{
    SHMT_ASSERT(dst.rows() == src.rows() && dst.cols() == src.cols(),
                "memcpy2d shape mismatch: ", dst.rows(), "x", dst.cols(),
                " vs ", src.rows(), "x", src.cols());
    const size_t row_bytes = src.cols() * sizeof(float);
    for (size_t r = 0; r < src.rows(); ++r)
        std::memcpy(dst.row(r), src.row(r), row_bytes);
}

Tensor
toTensor(ConstTensorView src)
{
    Tensor out(src.rows(), src.cols());
    memcpy2d(out.view(), src);
    return out;
}

} // namespace shmt

#include "tensor.hh"

#include <algorithm>
#include <cstring>

#include "common/simd.hh"

namespace shmt {

std::pair<float, float>
TensorView::minmax(bool simd) const
{
    return ConstTensorView(*this).minmax(simd);
}

std::pair<float, float>
ConstTensorView::minmax(bool simd) const
{
    if (size() == 0)
        return {0.0f, 0.0f};
    float lo = at(0, 0);
    float hi = lo;
    if (simd) {
        // Identical to the serial scan for finite data (min/max folds
        // are order-independent); NaN handling is unspecified, which
        // is why --host-simd=off routes to the scalar loop below.
        for (size_t r = 0; r < rows_; ++r)
            simd::rowMinMax(row(r), cols_, lo, hi);
        return {lo, hi};
    }
    // Legacy serial scan, exactly as-compiled pre-SIMD: the
    // first-argument accumulator makes std::min/std::max propagate a
    // leading NaN.
    for (size_t r = 0; r < rows_; ++r) {
        const float *p = row(r);
        for (size_t c = 0; c < cols_; ++c) {
            lo = std::min(lo, p[c]);
            hi = std::max(hi, p[c]);
        }
    }
    return {lo, hi};
}

void
memcpy2d(TensorView dst, ConstTensorView src)
{
    SHMT_ASSERT(dst.rows() == src.rows() && dst.cols() == src.cols(),
                "memcpy2d shape mismatch: ", dst.rows(), "x", dst.cols(),
                " vs ", src.rows(), "x", src.cols());
    const size_t row_bytes = src.cols() * sizeof(float);
    for (size_t r = 0; r < src.rows(); ++r)
        std::memcpy(dst.row(r), src.row(r), row_bytes);
}

Tensor
toTensor(ConstTensorView src)
{
    // memcpy2d overwrites the full extent — skip the zero-fill.
    Tensor out = Tensor::uninitialized(src.rows(), src.cols());
    memcpy2d(out.view(), src);
    return out;
}

} // namespace shmt

/**
 * @file
 * Element data types supported by SHMT devices.
 *
 * The prototype platform in the paper spans FP32 (GPU native), FP16
 * (GPU half precision), and INT8 (Edge TPU). SHMT's runtime performs
 * type casting/quantization at HLOP distribution time (paper §3.3.2).
 */

#ifndef SHMT_TENSOR_DTYPE_HH
#define SHMT_TENSOR_DTYPE_HH

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace shmt {

/** Element data type of a device computation. */
enum class DType : uint8_t {
    Float32,
    Float16,
    Int8,
    Int32,
};

/** Size in bytes of one element of @p t. */
constexpr size_t
dtypeSize(DType t)
{
    switch (t) {
      case DType::Float32: return 4;
      case DType::Float16: return 2;
      case DType::Int8:    return 1;
      case DType::Int32:   return 4;
    }
    return 0;
}

/** Human-readable name of @p t. */
constexpr std::string_view
dtypeName(DType t)
{
    switch (t) {
      case DType::Float32: return "fp32";
      case DType::Float16: return "fp16";
      case DType::Int8:    return "int8";
      case DType::Int32:   return "int32";
    }
    return "?";
}

/**
 * Number of distinct representable magnitude steps a dtype offers within
 * a unit range; used by the criticality model to reason about how much
 * precision a device can deliver (paper §3.5, device-dependent limits).
 */
constexpr double
dtypeLevels(DType t)
{
    switch (t) {
      case DType::Float32: return 1 << 24;  // mantissa resolution
      case DType::Float16: return 1 << 11;
      case DType::Int8:    return 256;
      case DType::Int32:   return 4.0 * (1u << 30);
    }
    return 0;
}

} // namespace shmt

#endif // SHMT_TENSOR_DTYPE_HH

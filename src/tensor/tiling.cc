#include "tiling.hh"

#include <algorithm>

#include "common/math_utils.hh"

namespace shmt {

std::vector<Rect>
vectorPartitions(size_t rows, size_t cols, size_t count)
{
    SHMT_ASSERT(rows > 0 && cols > 0, "empty dataset");
    count = std::max<size_t>(1, std::min(count, rows));

    // Aim for page-multiple partitions: each partition gets a whole
    // number of rows, at least ceil(kMinVectorElems / cols) of them
    // when the dataset is large enough.
    size_t min_rows = std::max<size_t>(1, ceilDiv(kMinVectorElems, cols));
    if (min_rows * count > rows)
        min_rows = std::max<size_t>(1, rows / count);

    const size_t usable = std::min(count, std::max<size_t>(1,
                                                           rows / min_rows));
    std::vector<Rect> out;
    out.reserve(usable);
    size_t base = rows / usable;
    size_t extra = rows % usable;
    size_t r0 = 0;
    for (size_t i = 0; i < usable; ++i) {
        const size_t r = base + (i < extra ? 1 : 0);
        out.push_back(Rect{r0, 0, r, cols});
        r0 += r;
    }
    SHMT_ASSERT(r0 == rows, "partitions do not cover dataset");
    return out;
}

std::vector<Rect>
tilePartitions(size_t rows, size_t cols, size_t tile_rows, size_t tile_cols)
{
    SHMT_ASSERT(rows > 0 && cols > 0, "empty dataset");
    SHMT_ASSERT(tile_rows > 0 && tile_cols > 0, "empty tile");
    std::vector<Rect> out;
    out.reserve(ceilDiv(rows, tile_rows) * ceilDiv(cols, tile_cols));
    for (size_t r0 = 0; r0 < rows; r0 += tile_rows) {
        const size_t r = std::min(tile_rows, rows - r0);
        for (size_t c0 = 0; c0 < cols; c0 += tile_cols) {
            const size_t c = std::min(tile_cols, cols - c0);
            out.push_back(Rect{r0, c0, r, c});
        }
    }
    return out;
}

size_t
choosePartitionCount(size_t rows, size_t cols, size_t min_count,
                     size_t max_count)
{
    const size_t total = rows * cols;
    const size_t by_pages = std::max<size_t>(1, total / kMinVectorElems);
    size_t count = std::min(by_pages, max_count);
    count = std::max(count, std::min(min_count, rows));
    return std::max<size_t>(1, std::min(count, rows));
}

ConstTensorView
regionView(const Tensor &t, const Rect &r)
{
    return t.slice(r.row0, r.col0, r.rows, r.cols);
}

TensorView
regionView(Tensor &t, const Rect &r)
{
    return t.slice(r.row0, r.col0, r.rows, r.cols);
}

} // namespace shmt

/**
 * @file
 * TFLite-style affine INT8 quantization and FP16 rounding.
 *
 * The Edge TPU only computes in INT8 (paper §2.1); the SHMT runtime
 * performs "data type casting through the desired quantization method
 * before distributing the input data" and restores the result precision
 * afterwards (paper §3.3.2). These helpers implement that path with the
 * same affine mapping TFLite uses:
 *
 *     real = scale * (q - zero_point),    q in [-128, 127]
 *
 * Quantization error is inherently proportional to the value range of a
 * partition — this is the physical mechanism QAWS's criticality metric
 * (range + stddev) is built on.
 */

#ifndef SHMT_TENSOR_QUANTIZE_HH
#define SHMT_TENSOR_QUANTIZE_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace shmt {

/** Affine quantization parameters (TFLite convention). */
struct QuantParams
{
    float scale = 1.0f;       //!< real units per quantized step
    int32_t zeroPoint = 0;    //!< q value representing real 0.0

    /** Map a real value to its quantized code (saturating). */
    int8_t quantize(float v) const;

    /** Map a quantized code back to a real value. */
    float
    dequantize(int8_t q) const
    {
        return scale * (static_cast<float>(q) -
                        static_cast<float>(zeroPoint));
    }
};

/**
 * Choose affine parameters covering [lo, hi] (the range is widened to
 * include 0 so the zero point is exactly representable, as TFLite does).
 */
QuantParams chooseQuantParams(float lo, float hi);

/** Choose parameters from the min/max of @p src. The @p simd flag
 *  selects the range scan (ConstTensorView::minmax), so
 *  `--host-simd=off` reproduces the legacy serial scan exactly. */
QuantParams chooseQuantParams(ConstTensorView src, bool simd = true);

/**
 * Robust value range of @p src: approximately the
 * [@p lo_frac, @p hi_frac] quantiles, estimated from up to 64Ki
 * strided samples. TFLite's post-training calibration clips ranges
 * the same way so a few extreme outliers (e.g. the DC coefficient of
 * a spectrum) do not ruin the quantization step for everything else.
 */
std::pair<float, float> robustRange(ConstTensorView src,
                                    double lo_frac = 0.001,
                                    double hi_frac = 0.999);

/**
 * Quantize a view into a dense int8 buffer (row-major). The @p simd
 * path is bit-identical to the scalar one (true division, nearest-even
 * rounding, saturating narrow); the flag exists so `--host-simd=off`
 * reproduces the legacy pass exactly as-compiled.
 */
std::vector<int8_t> quantize(ConstTensorView src, const QuantParams &qp,
                             bool simd = true);

/** Dequantize a dense int8 buffer back into @p dst. */
void dequantize(const std::vector<int8_t> &src, const QuantParams &qp,
                TensorView dst, bool simd = true);

/**
 * Round-trip a view through INT8: the value each element would have
 * after quantize + dequantize. This is what the simulated Edge TPU sees.
 */
void fakeQuantize(ConstTensorView src, TensorView dst,
                  const QuantParams &qp, bool simd = true);

/** Round a float to the nearest FP16-representable value (GPU half mode). */
float toFloat16(float v);

/** Apply FP16 rounding elementwise. */
void fakeQuantizeFp16(ConstTensorView src, TensorView dst,
                      bool simd = true);

} // namespace shmt

#endif // SHMT_TENSOR_QUANTIZE_HH

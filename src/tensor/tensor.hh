/**
 * @file
 * Host-side 2-D float tensor, non-owning views, and 2-D copies.
 *
 * SHMT's data distribution follows cudaMemcpy2D semantics (paper
 * §3.3.2): a partition is described by a starting address, element
 * size, and the dimensions of the sub-rectangle; the runtime computes
 * effective addresses from those. `TensorView`/`ConstTensorView` model
 * exactly that: a pointer plus (rows, cols, rowStride).
 */

#ifndef SHMT_TENSOR_TENSOR_HH
#define SHMT_TENSOR_TENSOR_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.hh"
#include "common/memory_pool.hh"

namespace shmt {

class ConstTensorView;

/** Non-owning mutable view of a 2-D sub-rectangle of float data. */
class TensorView
{
  public:
    TensorView() = default;

    /** View over @p rows x @p cols elements at @p data, rows separated
     *  by @p row_stride elements. */
    TensorView(float *data, size_t rows, size_t cols, size_t row_stride)
        : data_(data), rows_(rows), cols_(cols), rowStride_(row_stride)
    {
        SHMT_ASSERT(row_stride >= cols || rows <= 1,
                    "row stride smaller than row width");
    }

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t rowStride() const { return rowStride_; }
    size_t size() const { return rows_ * cols_; }
    bool contiguous() const { return rowStride_ == cols_ || rows_ <= 1; }
    float *data() const { return data_; }

    /** Element access (row, col). */
    float &
    at(size_t r, size_t c) const
    {
        return data_[r * rowStride_ + c];
    }

    /** Pointer to the first element of row @p r. */
    float *row(size_t r) const { return data_ + r * rowStride_; }

    /** Sub-rectangle view. */
    TensorView
    slice(size_t r0, size_t c0, size_t rows, size_t cols) const
    {
        SHMT_ASSERT(r0 + rows <= rows_ && c0 + cols <= cols_,
                    "slice out of bounds");
        return TensorView(data_ + r0 * rowStride_ + c0, rows, cols,
                          rowStride_);
    }

    /** Fill every element with @p v. */
    void
    fill(float v) const
    {
        for (size_t r = 0; r < rows_; ++r) {
            float *p = row(r);
            for (size_t c = 0; c < cols_; ++c)
                p[c] = v;
        }
    }

    /** Minimum and maximum element (0,0 pair if empty). See the
     *  ConstTensorView overload for the @p simd flag. */
    std::pair<float, float> minmax(bool simd = true) const;

  private:
    float *data_ = nullptr;
    size_t rows_ = 0;
    size_t cols_ = 0;
    size_t rowStride_ = 0;
};

/** Non-owning read-only view of a 2-D sub-rectangle of float data. */
class ConstTensorView
{
  public:
    ConstTensorView() = default;

    ConstTensorView(const float *data, size_t rows, size_t cols,
                    size_t row_stride)
        : data_(data), rows_(rows), cols_(cols), rowStride_(row_stride)
    {
        SHMT_ASSERT(row_stride >= cols || rows <= 1,
                    "row stride smaller than row width");
    }

    /** Implicit conversion from a mutable view. */
    ConstTensorView(const TensorView &v)
        : data_(v.data()), rows_(v.rows()), cols_(v.cols()),
          rowStride_(v.rowStride())
    {}

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t rowStride() const { return rowStride_; }
    size_t size() const { return rows_ * cols_; }
    bool contiguous() const { return rowStride_ == cols_ || rows_ <= 1; }
    const float *data() const { return data_; }

    const float &
    at(size_t r, size_t c) const
    {
        return data_[r * rowStride_ + c];
    }

    const float *row(size_t r) const { return data_ + r * rowStride_; }

    ConstTensorView
    slice(size_t r0, size_t c0, size_t rows, size_t cols) const
    {
        SHMT_ASSERT(r0 + rows <= rows_ && c0 + cols <= cols_,
                    "slice out of bounds");
        return ConstTensorView(data_ + r0 * rowStride_ + c0, rows, cols,
                               rowStride_);
    }

    /** Minimum and maximum element (0,0 pair if empty). The @p simd
     *  scan equals the scalar one for finite data (min/max folds are
     *  order-independent); @p simd = false runs the legacy serial
     *  loop exactly as-compiled, so `--host-simd=off` staging passes
     *  reproduce pre-SIMD behavior even on NaN inputs. */
    std::pair<float, float> minmax(bool simd = true) const;

  private:
    const float *data_ = nullptr;
    size_t rows_ = 0;
    size_t cols_ = 0;
    size_t rowStride_ = 0;
};

/**
 * Owning 2-D float tensor (row-major, contiguous).
 *
 * Every tensor carries a process-unique identity and a *write
 * generation*: the generation is bumped whenever a mutable alias of
 * the payload is handed out (non-const data()/at()/view()/slice()),
 * i.e. strictly before any bytes can change through it. The pair
 * (id(), generation()) therefore names an immutable snapshot of the
 * payload bytes — if two reads observe the same pair, they observed
 * the same bytes — which is what the runtime's data-derived caches
 * (criticality statistics, quantization ranges) key on. Ids are never
 * reused: copies, moves, and assignments all mint a fresh identity,
 * so a stale (id, generation) key can never alias a live tensor.
 *
 * The bump-on-handout rule is conservative in one direction only
 * (handing out a view you never write through costs a spurious cache
 * miss, never a stale hit) with one caveat: a mutable view held
 * across a generation read and written *afterwards* would not be
 * observed. The runtime never does that — it derives fresh views per
 * HLOP — and callers mixing cached reads with long-lived mutable
 * views must re-acquire the view to publish the write.
 */
class Tensor
{
  public:
    Tensor() = default;

    /** Allocate a rows x cols tensor initialized to @p init. The
     *  payload is a pool-leased 64-byte-aligned block. */
    Tensor(size_t rows, size_t cols, float init = 0.0f)
        : rows_(rows), cols_(cols), data_(rows * cols)
    {
        if (init != 0.0f)
            data_.fill(init);
    }

    /**
     * Allocate a rows x cols tensor WITHOUT initializing the payload
     * (skips the zero-fill when the memory pool is enabled; canary-
     * poisoned in SHMT_ASAN/debug builds). Only for call sites that
     * provably overwrite the full extent before any read — map-style
     * kernel outputs, staging destinations, dequantize targets, whole-
     * view copies. Reduction outputs and accumulators must NOT use
     * this: they rely on the zero/init semantics of the plain
     * constructor. With the pool disabled this zero-fills, so
     * `--mem-pool off|on` bit-identity checks the overwrite claim.
     */
    static Tensor
    uninitialized(size_t rows, size_t cols)
    {
        Tensor t;
        t.rows_ = rows;
        t.cols_ = cols;
        t.data_ = common::Buffer::uninitialized(rows * cols);
        return t;
    }

    /** Adopt existing row-major data (must be rows*cols long). */
    Tensor(size_t rows, size_t cols, const std::vector<float> &data)
        : rows_(rows), cols_(cols),
          data_(common::Buffer::uninitialized(data.size()))
    {
        SHMT_ASSERT(data_.size() == rows_ * cols_, "size mismatch");
        if (!data.empty())
            std::memcpy(data_.data(), data.data(),
                        data.size() * sizeof(float));
    }

    /** Copies and moves mint a fresh identity (generation restarts). */
    Tensor(const Tensor &other)
        : rows_(other.rows_), cols_(other.cols_),
          data_(clone(other.data_))
    {}
    Tensor(Tensor &&other) noexcept
        : rows_(other.rows_), cols_(other.cols_),
          data_(std::move(other.data_))
    {
        other.rows_ = other.cols_ = 0;
    }
    Tensor &
    operator=(const Tensor &other)
    {
        if (this != &other) {
            rows_ = other.rows_;
            cols_ = other.cols_;
            data_ = clone(other.data_);
            id_ = nextId();
            gen_.store(0, std::memory_order_relaxed);
        }
        return *this;
    }
    Tensor &
    operator=(Tensor &&other) noexcept
    {
        if (this != &other) {
            rows_ = other.rows_;
            cols_ = other.cols_;
            data_ = std::move(other.data_);
            other.rows_ = other.cols_ = 0;
            id_ = nextId();
            gen_.store(0, std::memory_order_relaxed);
        }
        return *this;
    }

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }
    size_t bytes() const { return data_.size() * sizeof(float); }

    /** Process-unique payload identity (never reused). */
    uint64_t id() const { return id_; }

    /**
     * Write generation: monotonically increases every time a mutable
     * alias of the payload is handed out. Equal (id, generation)
     * observations imply equal payload bytes.
     */
    uint64_t
    generation() const
    {
        return gen_.load(std::memory_order_relaxed);
    }

    float *
    data()
    {
        bumpGeneration();
        return data_.data();
    }
    const float *data() const { return data_.data(); }

    float &
    at(size_t r, size_t c)
    {
        bumpGeneration();
        return data_[r * cols_ + c];
    }
    const float &at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

    /** Whole-tensor views. */
    TensorView
    view()
    {
        bumpGeneration();
        return TensorView(data_.data(), rows_, cols_, cols_);
    }
    ConstTensorView
    view() const
    {
        return ConstTensorView(data_.data(), rows_, cols_, cols_);
    }

    /** Sub-rectangle views. */
    TensorView
    slice(size_t r0, size_t c0, size_t rows, size_t cols)
    {
        return view().slice(r0, c0, rows, cols);
    }
    ConstTensorView
    slice(size_t r0, size_t c0, size_t rows, size_t cols) const
    {
        return view().slice(r0, c0, rows, cols);
    }

  private:
    static uint64_t
    nextId()
    {
        static std::atomic<uint64_t> counter{1};
        return counter.fetch_add(1, std::memory_order_relaxed);
    }

    /** Payload copy: uninitialized lease + memcpy of the full extent
     *  (the legacy vector copy never zeroed either). */
    static common::Buffer
    clone(const common::Buffer &src)
    {
        common::Buffer dst = common::Buffer::uninitialized(src.size());
        if (!src.empty())
            std::memcpy(dst.data(), src.data(),
                        src.size() * sizeof(float));
        return dst;
    }

    void
    bumpGeneration()
    {
        gen_.fetch_add(1, std::memory_order_relaxed);
    }

    size_t rows_ = 0;
    size_t cols_ = 0;
    common::Buffer data_;
    uint64_t id_ = nextId();
    std::atomic<uint64_t> gen_{0};
};

/**
 * cudaMemcpy2D-style rectangular copy between views.
 * Shapes must match exactly.
 */
void memcpy2d(TensorView dst, ConstTensorView src);

/** Copy a view into a freshly allocated contiguous tensor. */
Tensor toTensor(ConstTensorView src);

} // namespace shmt

#endif // SHMT_TENSOR_TENSOR_HH

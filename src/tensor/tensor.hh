/**
 * @file
 * Host-side 2-D float tensor, non-owning views, and 2-D copies.
 *
 * SHMT's data distribution follows cudaMemcpy2D semantics (paper
 * §3.3.2): a partition is described by a starting address, element
 * size, and the dimensions of the sub-rectangle; the runtime computes
 * effective addresses from those. `TensorView`/`ConstTensorView` model
 * exactly that: a pointer plus (rows, cols, rowStride).
 */

#ifndef SHMT_TENSOR_TENSOR_HH
#define SHMT_TENSOR_TENSOR_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"

namespace shmt {

class ConstTensorView;

/** Non-owning mutable view of a 2-D sub-rectangle of float data. */
class TensorView
{
  public:
    TensorView() = default;

    /** View over @p rows x @p cols elements at @p data, rows separated
     *  by @p row_stride elements. */
    TensorView(float *data, size_t rows, size_t cols, size_t row_stride)
        : data_(data), rows_(rows), cols_(cols), rowStride_(row_stride)
    {
        SHMT_ASSERT(row_stride >= cols || rows <= 1,
                    "row stride smaller than row width");
    }

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t rowStride() const { return rowStride_; }
    size_t size() const { return rows_ * cols_; }
    bool contiguous() const { return rowStride_ == cols_ || rows_ <= 1; }
    float *data() const { return data_; }

    /** Element access (row, col). */
    float &
    at(size_t r, size_t c) const
    {
        return data_[r * rowStride_ + c];
    }

    /** Pointer to the first element of row @p r. */
    float *row(size_t r) const { return data_ + r * rowStride_; }

    /** Sub-rectangle view. */
    TensorView
    slice(size_t r0, size_t c0, size_t rows, size_t cols) const
    {
        SHMT_ASSERT(r0 + rows <= rows_ && c0 + cols <= cols_,
                    "slice out of bounds");
        return TensorView(data_ + r0 * rowStride_ + c0, rows, cols,
                          rowStride_);
    }

    /** Fill every element with @p v. */
    void
    fill(float v) const
    {
        for (size_t r = 0; r < rows_; ++r) {
            float *p = row(r);
            for (size_t c = 0; c < cols_; ++c)
                p[c] = v;
        }
    }

    /** Minimum and maximum element (0,0 pair if empty). See the
     *  ConstTensorView overload for the @p simd flag. */
    std::pair<float, float> minmax(bool simd = true) const;

  private:
    float *data_ = nullptr;
    size_t rows_ = 0;
    size_t cols_ = 0;
    size_t rowStride_ = 0;
};

/** Non-owning read-only view of a 2-D sub-rectangle of float data. */
class ConstTensorView
{
  public:
    ConstTensorView() = default;

    ConstTensorView(const float *data, size_t rows, size_t cols,
                    size_t row_stride)
        : data_(data), rows_(rows), cols_(cols), rowStride_(row_stride)
    {
        SHMT_ASSERT(row_stride >= cols || rows <= 1,
                    "row stride smaller than row width");
    }

    /** Implicit conversion from a mutable view. */
    ConstTensorView(const TensorView &v)
        : data_(v.data()), rows_(v.rows()), cols_(v.cols()),
          rowStride_(v.rowStride())
    {}

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t rowStride() const { return rowStride_; }
    size_t size() const { return rows_ * cols_; }
    bool contiguous() const { return rowStride_ == cols_ || rows_ <= 1; }
    const float *data() const { return data_; }

    const float &
    at(size_t r, size_t c) const
    {
        return data_[r * rowStride_ + c];
    }

    const float *row(size_t r) const { return data_ + r * rowStride_; }

    ConstTensorView
    slice(size_t r0, size_t c0, size_t rows, size_t cols) const
    {
        SHMT_ASSERT(r0 + rows <= rows_ && c0 + cols <= cols_,
                    "slice out of bounds");
        return ConstTensorView(data_ + r0 * rowStride_ + c0, rows, cols,
                               rowStride_);
    }

    /** Minimum and maximum element (0,0 pair if empty). The @p simd
     *  scan equals the scalar one for finite data (min/max folds are
     *  order-independent); @p simd = false runs the legacy serial
     *  loop exactly as-compiled, so `--host-simd=off` staging passes
     *  reproduce pre-SIMD behavior even on NaN inputs. */
    std::pair<float, float> minmax(bool simd = true) const;

  private:
    const float *data_ = nullptr;
    size_t rows_ = 0;
    size_t cols_ = 0;
    size_t rowStride_ = 0;
};

/** Owning 2-D float tensor (row-major, contiguous). */
class Tensor
{
  public:
    Tensor() = default;

    /** Allocate a rows x cols tensor initialized to @p init. */
    Tensor(size_t rows, size_t cols, float init = 0.0f)
        : rows_(rows), cols_(cols), data_(rows * cols, init)
    {}

    /** Adopt existing row-major data (must be rows*cols long). */
    Tensor(size_t rows, size_t cols, std::vector<float> data)
        : rows_(rows), cols_(cols), data_(std::move(data))
    {
        SHMT_ASSERT(data_.size() == rows_ * cols_, "size mismatch");
    }

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }
    size_t bytes() const { return data_.size() * sizeof(float); }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    float &at(size_t r, size_t c) { return data_[r * cols_ + c]; }
    const float &at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

    /** Whole-tensor views. */
    TensorView view() { return TensorView(data(), rows_, cols_, cols_); }
    ConstTensorView
    view() const
    {
        return ConstTensorView(data(), rows_, cols_, cols_);
    }

    /** Sub-rectangle views. */
    TensorView
    slice(size_t r0, size_t c0, size_t rows, size_t cols)
    {
        return view().slice(r0, c0, rows, cols);
    }
    ConstTensorView
    slice(size_t r0, size_t c0, size_t rows, size_t cols) const
    {
        return view().slice(r0, c0, rows, cols);
    }

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<float> data_;
};

/**
 * cudaMemcpy2D-style rectangular copy between views.
 * Shapes must match exactly.
 */
void memcpy2d(TensorView dst, ConstTensorView src);

/** Copy a view into a freshly allocated contiguous tensor. */
Tensor toTensor(ConstTensorView src);

} // namespace shmt

#endif // SHMT_TENSOR_TENSOR_HH

/**
 * @file
 * Partition geometry for the two parallelization models SHMT supports
 * (paper §3.2, Table 1): element-wise *vector* partitioning and
 * tile-wise *matrix* partitioning.
 *
 * Following paper §3.4, partitions are kept page-multiple whenever
 * possible: with 4 KiB pages and FP32 data, a vector partition holds at
 * least 1024 consecutive elements and a matrix tile is at least
 * 1024x1024 when the input allows it.
 */

#ifndef SHMT_TENSOR_TILING_HH
#define SHMT_TENSOR_TILING_HH

#include <cstddef>
#include <vector>

#include "tensor/tensor.hh"

namespace shmt {

/** Parallelization model of a VOP (paper Table 1). */
enum class ParallelModel : uint8_t {
    Vector,   //!< element-wise; split into row ranges
    Tile,     //!< tile-wise; split into 2-D tiles
};

/** A rectangular region of a 2-D dataset. */
struct Rect
{
    size_t row0 = 0;
    size_t col0 = 0;
    size_t rows = 0;
    size_t cols = 0;

    size_t size() const { return rows * cols; }

    bool
    operator==(const Rect &o) const
    {
        return row0 == o.row0 && col0 == o.col0 && rows == o.rows &&
               cols == o.cols;
    }
};

/** System page size assumed by the partitioner (paper §3.4). */
constexpr size_t kPageBytes = 4096;

/** Minimum elements per vector partition for FP32 data (one page). */
constexpr size_t kMinVectorElems = kPageBytes / sizeof(float);

/**
 * Split a rows x cols dataset into @p count row-range partitions for
 * the vector model. Partitions are whole rows; the element count per
 * partition is padded up to page multiples where the shape allows. The
 * returned rectangles exactly cover the dataset.
 */
std::vector<Rect> vectorPartitions(size_t rows, size_t cols, size_t count);

/**
 * Split a rows x cols dataset into 2-D tiles of at most
 * tile_rows x tile_cols each (edge tiles may be smaller).
 */
std::vector<Rect> tilePartitions(size_t rows, size_t cols,
                                 size_t tile_rows, size_t tile_cols);

/**
 * Choose a partition count for a dataset so each partition is at least
 * page-sized but there are enough partitions (>= min_count) to spread
 * across and rebalance between devices.
 */
size_t choosePartitionCount(size_t rows, size_t cols, size_t min_count,
                            size_t max_count);

/** View of @p t restricted to @p r. */
ConstTensorView regionView(const Tensor &t, const Rect &r);

/** Mutable view of @p t restricted to @p r. */
TensorView regionView(Tensor &t, const Rect &r);

} // namespace shmt

#endif // SHMT_TENSOR_TILING_HH

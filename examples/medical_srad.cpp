/**
 * @file
 * Medical-imaging despeckling (SRAD) on the SHMT virtual device.
 *
 * SRAD (speckle-reducing anisotropic diffusion) is the paper's
 * medical-imaging benchmark — a diffusion stencil over an ultrasound
 * intensity image. This example runs the two-step diffusion program
 * under QAWS-TS, shows which device processed which share, and
 * verifies the despeckled image keeps high structural similarity to
 * the exact result.
 *
 *   ./medical_srad [edge]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/benchmarks.hh"
#include "apps/harness.hh"

int
main(int argc, char **argv)
{
    using namespace shmt;
    const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1024;

    auto rt = apps::makePrototypeRuntime();
    auto bench = apps::makeBenchmark("srad", n, n);
    const auto r = apps::evaluatePolicy(rt, *bench, "qaws-ts");

    std::printf("SRAD despeckling, %zux%zu ultrasound image, %zu "
                "diffusion steps\n",
                n, n, bench->program().ops.size());
    std::printf("  GPU baseline latency : %.4f s\n", r.baselineSec);
    std::printf("  SHMT (QAWS-TS)       : %.4f s  (%.2fx speedup)\n",
                r.shmtSec, r.speedup);
    for (const auto &d : r.run.devices)
        std::printf("    %-8s %4zu HLOPs (%zu stolen)\n",
                    d.name.c_str(), d.hlops, d.stolen);
    std::printf("  result MAPE          : %.2f %%\n", r.mapePct);
    std::printf("  result SSIM          : %.4f %s\n", r.ssim,
                r.ssim > 0.95 ? "(very good quality)" : "");
    std::printf("  energy vs baseline   : %.1f %%\n",
                100.0 * r.run.energy.totalEnergyJ /
                    r.baseline.energy.totalEnergyJ);

    // Energy-delay product, the paper's §5.5 headline metric.
    std::printf("  EDP vs baseline      : %.1f %%\n",
                100.0 * r.run.energy.edp / r.baseline.energy.edp);
    return 0;
}

/**
 * @file
 * Three-device co-execution with execution tracing.
 *
 * Runs the Sobel benchmark on a platform extended with the FP16 image
 * DSP (paper §2.1's extension sketch), records every HLOP, writes a
 * Chrome-tracing timeline (open shmt_trace.json in chrome://tracing
 * or https://ui.perfetto.dev), and prints per-device utilization.
 *
 *   ./heterogeneous_trace [edge]
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/runtime.hh"
#include "devices/backend.hh"
#include "kernels/kernel_registry.hh"
#include "kernels/workload.hh"
#include "sim/trace.hh"

int
main(int argc, char **argv)
{
    using namespace shmt;
    const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2048;

    auto backends = devices::makePrototypeBackends(
        kernels::KernelRegistry::instance(), sim::defaultCalibration(),
        /*include_cpu=*/false, /*include_dsp=*/true);
    core::Runtime runtime(std::move(backends));

    sim::ExecutionTrace trace;
    runtime.attachTrace(&trace);

    const Tensor image = kernels::makeImage(n, n, /*seed=*/11);
    Tensor edges(n, n);
    core::VopProgram program;
    program.name = "sobel";
    {
        core::VOp vop;
        vop.opcode = "sobel";
        vop.inputs = {&image};
        vop.output = &edges;
        program.ops.push_back(std::move(vop));
    }

    auto policy = core::makePolicy("qaws-ts");
    const core::RunResult r = runtime.run(program, *policy);
    const core::RunResult base = runtime.runGpuBaseline(program);

    std::printf("Sobel %zux%zu on GPU + Edge TPU + image DSP\n", n, n);
    std::printf("  baseline latency : %.4f s\n", base.makespanSec);
    std::printf("  SHMT latency     : %.4f s  (%.2fx)\n", r.makespanSec,
                base.makespanSec / r.makespanSec);
    std::printf("  HLOPs stolen     : %.0f %%\n",
                100.0 * trace.stolenFraction());
    for (const auto &[kind, busy] : trace.busyByDevice()) {
        std::printf("  %-8s busy %6.2f ms  (%4.1f %% of makespan), %zu "
                    "HLOPs\n",
                    std::string(sim::deviceKindName(kind)).c_str(),
                    busy * 1e3, 100.0 * busy / r.makespanSec,
                    trace.hlopsByDevice().at(kind));
    }

    std::ofstream out("shmt_trace.json");
    trace.writeChromeTrace(out);
    std::printf("  timeline written to shmt_trace.json (%zu events)\n",
                trace.events().size());
    return 0;
}

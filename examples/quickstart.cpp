/**
 * @file
 * SHMT quickstart: offload one GEMM to the virtual device.
 *
 * The programmer-facing flow mirrors the paper's Fig. 4: the
 * application calls a library-level function (shmt matmul); the SHMT
 * runtime decomposes the VOP into HLOPs, schedules them across the
 * GPU and the Edge TPU with the QAWS-TS policy, and aggregates the
 * result in shared memory.
 *
 *   ./quickstart [edge]
 */

#include <cstdio>
#include <cstdlib>

#include "core/shmt_api.hh"
#include "kernels/workload.hh"

int
main(int argc, char **argv)
{
    using namespace shmt;
    const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1024;

    // Inputs: two n x n matrices from the synthetic workload
    // generator (spatially varying value ranges, like real data).
    const Tensor a = kernels::makeField(n, n, /*seed=*/1);
    const Tensor b = kernels::makeField(n, n, /*seed=*/2);
    Tensor c(n, n);

    // The SHMT virtual device: GPU + Edge TPU under QAWS-TS.
    core::Context ctx;
    const core::RunResult r = ctx.matmul(a, b, c);

    std::printf("GEMM %zux%zu on the SHMT virtual device\n", n, n);
    std::printf("  HLOPs executed : %zu\n", r.hlopsTotal);
    for (const auto &d : r.devices)
        std::printf("    %-8s %4zu HLOPs (%zu stolen), busy %.3f s\n",
                    d.name.c_str(), d.hlops, d.stolen, d.busySec);
    std::printf("  simulated latency : %.4f s\n", r.makespanSec);
    std::printf("  energy            : %.2f J (EDP %.3f)\n",
                r.energy.totalEnergyJ, r.energy.edp);
    std::printf("  c[0][0] = %.3f\n", c.at(0, 0));
    return 0;
}

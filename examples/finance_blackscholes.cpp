/**
 * @file
 * Option pricing on the SHMT virtual device.
 *
 * Prices a grid of European call options by running the Blackscholes
 * benchmark program — a chain of primitive vector VOPs (divide, log,
 * axpb, ncdf, multiply, sub), exactly how the paper's programming
 * model composes library calls. Compares all scheduling policies on
 * both latency and pricing error.
 *
 *   ./finance_blackscholes [edge]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/benchmarks.hh"
#include "apps/harness.hh"

int
main(int argc, char **argv)
{
    using namespace shmt;
    const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1024;

    auto rt = apps::makePrototypeRuntime();
    auto bench = apps::makeBenchmark("blackscholes", n, n);

    std::printf("Blackscholes %zux%zu option grid, %zu chained VOPs\n",
                n, n, bench->program().ops.size());
    std::printf("%-16s %10s %10s %10s\n", "policy", "latency(s)",
                "speedup", "MAPE(%)");
    for (const char *policy :
         {"gpu-only", "tpu-only", "even", "work-stealing", "qaws-ts",
          "qaws-lu", "oracle"}) {
        const auto r = apps::evaluatePolicy(rt, *bench, policy);
        std::printf("%-16s %10.4f %10.2f %10.2f\n", policy, r.shmtSec,
                    r.speedup, r.mapePct);
    }

    // Spot-check one option against the closed form.
    const auto &call = bench->output();
    std::printf("\nsample call prices: %.3f %.3f %.3f\n",
                call.at(0, 0), call.at(n / 2, n / 2),
                call.at(n - 1, n - 1));
    return 0;
}

/**
 * @file
 * Modeling a custom platform with a calibration file.
 *
 * SHMT's platform model is data: this example builds a hypothetical
 * next-generation board (faster accelerator, better NPU fidelity,
 * faster link) from an inline calibration description and compares it
 * against the paper's Jetson-Nano prototype on the same workload.
 *
 *   ./custom_platform [edge]
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/runtime.hh"
#include "devices/backend.hh"
#include "kernels/kernel_registry.hh"
#include "kernels/workload.hh"
#include "sim/config.hh"

namespace {

double
speedupOn(const shmt::sim::PlatformCalibration &cal, size_t n)
{
    using namespace shmt;
    auto backends = devices::makePrototypeBackends(
        kernels::KernelRegistry::instance(), cal);
    core::Runtime runtime(std::move(backends), cal);

    const Tensor image = kernels::makeImage(n, n, /*seed=*/3);
    Tensor out(n, n);
    core::VopProgram program;
    program.name = "dct8x8";
    core::VOp vop;
    vop.opcode = "dct8x8";
    vop.inputs = {&image};
    vop.output = &out;
    program.ops.push_back(std::move(vop));

    const double base =
        runtime.runGpuBaseline(program, false).makespanSec;
    auto policy = core::makePolicy("qaws-ts");
    return base / runtime.run(program, *policy, false).makespanSec;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace shmt;
    const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4096;

    // A hypothetical successor platform: a 2x faster AI accelerator
    // behind a PCIe Gen3 link, with quantization-aware-trained models.
    std::istringstream custom_desc(R"(
        tpu_bandwidth_bps = 3.2e9
        tpu_invoke_sec    = 60e-6

        [kernel dct8x8]
        tpu_ratio = 3.98
        npu_noise = 0.0005
    )");
    const sim::PlatformCalibration custom =
        sim::loadCalibration(custom_desc);

    std::printf("DCT8x8 %zux%zu, QAWS-TS speedup over the GPU "
                "baseline:\n",
                n, n);
    std::printf("  paper prototype (Jetson Nano + Edge TPU) : %.2fx\n",
                speedupOn(sim::defaultCalibration(), n));
    std::printf("  hypothetical next-gen board              : %.2fx\n",
                speedupOn(custom, n));
    return 0;
}

/**
 * @file
 * An image-processing pipeline on the SHMT virtual device: mean
 * filter (denoise) -> Sobel (edges) -> histogram of edge magnitudes.
 *
 * Each stage is a VOP; the whole pipeline runs as one VopProgram so
 * the runtime schedules every stage across the GPU and Edge TPU, and
 * the example reports per-stage result quality against the exact
 * GPU-only execution.
 *
 *   ./image_pipeline [edge]
 */

#include <cstdio>
#include <cstdlib>

#include "core/shmt_api.hh"
#include "kernels/workload.hh"
#include "metrics/error_metrics.hh"

int
main(int argc, char **argv)
{
    using namespace shmt;
    const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1024;

    const Tensor image = kernels::makeImage(n, n, /*seed=*/7);
    Tensor denoised(n, n);
    Tensor edges(n, n);
    Tensor histogram(1, 256);

    core::VopProgram pipeline;
    pipeline.name = "image-pipeline";
    {
        core::VOp mf;
        mf.opcode = "mf";
        mf.inputs = {&image};
        mf.output = &denoised;
        pipeline.ops.push_back(std::move(mf));

        core::VOp sobel;
        sobel.opcode = "sobel";
        sobel.inputs = {&denoised};
        sobel.output = &edges;
        pipeline.ops.push_back(std::move(sobel));

        core::VOp hist;
        hist.opcode = "reduce_hist256";
        hist.inputs = {&edges};
        hist.output = &histogram;
        hist.scalars = {0.0f, 1024.0f};
        pipeline.ops.push_back(std::move(hist));
    }

    core::Context ctx;

    // Exact reference first (GPU baseline), then SHMT.
    const core::RunResult base = ctx.runBaseline(pipeline);
    const Tensor edges_ref = edges;
    const core::RunResult shmt = ctx.run(pipeline);

    std::printf("Image pipeline (%zux%zu): mf -> sobel -> hist256\n", n,
                n);
    std::printf("  GPU baseline latency : %.4f s\n", base.makespanSec);
    std::printf("  SHMT latency         : %.4f s  (%.2fx speedup)\n",
                shmt.makespanSec, base.makespanSec / shmt.makespanSec);
    std::printf("  edge-map MAPE        : %.2f %%\n",
                metrics::mape(edges_ref.view(), edges.view()));
    std::printf("  edge-map SSIM        : %.4f\n",
                metrics::ssim(edges_ref.view(), edges.view()));

    // A small ASCII sketch of the edge-magnitude histogram.
    double max_bin = 1.0;
    for (size_t i = 0; i < 256; ++i)
        max_bin = std::max(max_bin,
                           static_cast<double>(histogram.at(0, i)));
    std::printf("  edge-magnitude histogram (16 buckets):\n");
    for (size_t bucket = 0; bucket < 16; ++bucket) {
        double acc = 0.0;
        for (size_t i = 0; i < 16; ++i)
            acc += histogram.at(0, bucket * 16 + i);
        const int bar =
            static_cast<int>(40.0 * acc / (max_bin * 16.0) + 0.5);
        std::printf("    [%3zu..%3zu] %s\n", bucket * 16,
                    bucket * 16 + 15, std::string(bar, '#').c_str());
    }
    return 0;
}
